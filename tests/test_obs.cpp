// Observability subsystem tests: metrics registry semantics, the
// rcsim-trace-v1 wire format (encode/decode/CRC/torn tail), trace
// determinism across identical seeds, replay agreement with the live
// PathTracer, the online convergence-anatomy profiler (episode
// semantics, offline-replay equivalence, verbatim sink chaining), and
// the executor's published metrics block.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "exp/executor.hpp"
#include "exp/spec.hpp"
#include "obs/anatomy.hpp"
#include "obs/metrics.hpp"
#include "obs/replay.hpp"
#include "obs/trace_io.hpp"
#include "stats/collector.hpp"

namespace rcsim::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("x"), &c);
}

TEST(Metrics, GaugeTracksLastAndMax) {
  Gauge g;
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.maxValue(), 7.5);
}

TEST(Metrics, HistogramEmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, HistogramStatsAndQuantiles) {
  Histogram h;
  for (const double v : {0.001, 0.002, 0.004, 0.008, 1.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.minValue(), 0.001);
  EXPECT_DOUBLE_EQ(h.maxValue(), 1.0);
  EXPECT_NEAR(h.mean(), 1.015 / 5.0, 1e-12);
  // Quantiles are bucket upper bounds (1e-6 * 2^i) clamped to [min, max]:
  // the median of five power-of-two-spaced samples resolves to at most
  // 0.004's bucket bound, 0.004096.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.002);
  EXPECT_LE(p50, 0.004096);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
}

TEST(Metrics, RegistryJsonOmitsEmptySectionsAndSortsNames) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.toJson().object.empty());

  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  const JsonValue doc = reg.toJson();
  ASSERT_TRUE(doc.has("counters"));
  EXPECT_FALSE(doc.has("gauges"));
  EXPECT_FALSE(doc.has("histograms"));
  const auto& counters = doc.at("counters").object;
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a.one");  // std::map iterates sorted

  reg.gauge("g").set(4.0);
  reg.histogram("h").observe(0.5);
  const JsonValue full = reg.toJson();
  EXPECT_DOUBLE_EQ(full.at("gauges").at("g").numberAt("max"), 4.0);
  EXPECT_DOUBLE_EQ(full.at("histograms").at("h").numberAt("count"), 1.0);
}

TEST(Metrics, HistogramZeroCountSnapshotIsAllZero) {
  Histogram h;
  const JsonValue snap = h.toJson();
  EXPECT_DOUBLE_EQ(snap.numberAt("count"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("sum"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("min"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("max"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("mean"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("p50"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("p90"), 0.0);
  EXPECT_DOUBLE_EQ(snap.numberAt("p99"), 0.0);
}

TEST(Metrics, HistogramExactPowerOfTwoBucketBoundary) {
  // kSmallest * 2^10 sits exactly on a bucket's upper bound; ceil(log2)
  // keeps it in that bucket, so a single such sample quantiles to itself
  // (the bound clamps to [min, max] = [v, v]).
  const double v = Histogram::kSmallest * 1024.0;
  Histogram h;
  h.observe(v);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.minValue(), v);
  EXPECT_DOUBLE_EQ(h.maxValue(), v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), v);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), v);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), v);
  // One epsilon above the bound must not quantile below the sample: the
  // next bucket's bound still clamps to the observed max.
  Histogram above;
  const double v2 = v * (1.0 + 1e-9);
  above.observe(v2);
  EXPECT_DOUBLE_EQ(above.quantile(0.5), v2);
}

TEST(Metrics, HistogramSaturatingTopBucket) {
  // Values past kSmallest * 2^(kBuckets-1) all land in the open-ended top
  // bucket; quantiles stay clamped to the true observed extremes instead
  // of the bucket's (absent) upper bound.
  Histogram h;
  const double top = Histogram::kSmallest * std::ldexp(1.0, Histogram::kBuckets - 1);
  h.observe(top * 2.0);
  h.observe(1e30);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.maxValue(), 1e30);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1e30);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), top * 2.0);
  const JsonValue snap = h.toJson();
  EXPECT_DOUBLE_EQ(snap.numberAt("p99"), 1e30);
  // Non-finite observations are ignored, negatives clamp to zero.
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  h.observe(-1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
}

TEST(Metrics, ConcurrentMergeFromTwoScopeThreads) {
  // Two threads publish into one shared registry through their own
  // MetricsScope (the executor's worker-thread pattern); counters and
  // histogram totals must merge exactly. Run under TSan by ci.sh.
  MetricsRegistry reg;
  constexpr int kPerThread = 10000;
  auto work = [&reg] {
    MetricsScope scope{reg};
    MetricsRegistry* r = currentMetrics();
    ASSERT_NE(r, nullptr);
    for (int i = 0; i < kPerThread; ++i) {
      r->counter("merge.count").add();
      r->histogram("merge.lat").observe(1e-3);
    }
  };
  std::thread a{work};
  std::thread b{work};
  a.join();
  b.join();
  EXPECT_EQ(reg.counter("merge.count").value(), 2u * kPerThread);
  EXPECT_EQ(reg.histogram("merge.lat").count(), 2u * kPerThread);
  EXPECT_NEAR(reg.histogram("merge.lat").sum(), 2.0 * kPerThread * 1e-3, 1e-9);
}

TEST(Metrics, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(currentMetrics(), nullptr);
  MetricsRegistry outer;
  {
    MetricsScope a{outer};
    EXPECT_EQ(currentMetrics(), &outer);
    MetricsRegistry inner;
    {
      MetricsScope b{inner};
      EXPECT_EQ(currentMetrics(), &inner);
    }
    EXPECT_EQ(currentMetrics(), &outer);
  }
  EXPECT_EQ(currentMetrics(), nullptr);
}

// ------------------------------------------------------------ wire format

TEST(TraceIo, EventLineRoundTrips) {
  const TraceEvent ev{Time::seconds(400.25), TraceKind::RouteChange, 7, kInvalidNode, 42, 3, -1};
  const std::string line = encodeTraceLine(ev);
  TraceEvent back{};
  ASSERT_TRUE(decodeTraceLine(line, back));
  EXPECT_EQ(back, ev);
}

TEST(TraceIo, TamperedLineFailsCrc) {
  const TraceEvent ev{Time::seconds(1.0), TraceKind::Forward, 1, 2, 100, 64, 48};
  std::string line = encodeTraceLine(ev);
  const auto pos = line.find("100");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 3, "101");
  TraceEvent back{};
  EXPECT_FALSE(decodeTraceLine(line, back));
}

TEST(TraceIo, HeaderAndGarbageLinesAreNotEvents) {
  TraceEvent back{};
  EXPECT_FALSE(decodeTraceLine(encodeTraceHeader(JsonValue::makeObject()), back));
  EXPECT_FALSE(decodeTraceLine("not json", back));
  EXPECT_FALSE(decodeTraceLine("", back));
}

TEST(TraceIo, FileRoundTripAndTornTail) {
  const std::string path = std::filesystem::temp_directory_path() / "rcsim_obs_trace.jsonl";
  JsonValue meta = JsonValue::makeObject();
  meta.object["src"] = JsonValue::makeNumber(3);
  meta.object["dst"] = JsonValue::makeNumber(45);
  meta.object["nodes"] = JsonValue::makeNumber(49);

  std::vector<TraceEvent> events;
  {
    FileTraceSink sink{path, meta};
    for (int i = 0; i < 100; ++i) {
      const TraceEvent ev{Time::seconds(i), TraceKind::ControlSend, i % 7, (i + 1) % 7, i, 0, 0};
      events.push_back(ev);
      sink.onTraceEvent(ev);
    }
    sink.close();
    EXPECT_EQ(sink.eventsWritten(), 100u);
  }

  const TraceFile clean = readTraceFile(path);
  EXPECT_EQ(clean.corrupt, 0u);
  ASSERT_EQ(clean.events.size(), events.size());
  EXPECT_EQ(clean.events, events);
  EXPECT_EQ(clean.meta.numberAt("nodes"), 49.0);

  // A mid-write kill tears the last line; the reader skips and counts it.
  {
    std::ofstream torn{path, std::ios::app};
    torn << R"({"crc":"00000000","ev":[1,2,)";  // truncated record
  }
  const TraceFile repaired = readTraceFile(path);
  EXPECT_EQ(repaired.corrupt, 1u);
  EXPECT_EQ(repaired.events, events);

  std::filesystem::remove(path);
}

TEST(TraceIo, MissingOrHeaderlessFileThrows) {
  EXPECT_THROW((void)readTraceFile("/nonexistent/rcsim.trace"), std::runtime_error);
  const std::string path = std::filesystem::temp_directory_path() / "rcsim_obs_headerless.jsonl";
  {
    std::ofstream out{path};
    out << encodeTraceLine(TraceEvent{Time::seconds(1.0), TraceKind::LinkUp, 0, 1, 0, 0, 0})
        << "\n";
  }
  EXPECT_THROW((void)readTraceFile(path), std::runtime_error);
  std::filesystem::remove(path);
}

// --------------------------------------------------- determinism + replay

ScenarioConfig quickConfig(ProtocolKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = 4;
  cfg.seed = seed;
  cfg.trafficStart = Time::seconds(90.0);
  cfg.trafficStop = Time::seconds(150.0);
  cfg.failAt = Time::seconds(100.0);
  cfg.endAt = Time::seconds(200.0);
  return cfg;
}

std::vector<TraceEvent> traceRun(const ScenarioConfig& cfg) {
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();
  return sink.events();
}

TEST(TraceDeterminism, IdenticalSeedsProduceIdenticalDigests) {
  const ScenarioConfig cfg = quickConfig(ProtocolKind::Rip, 7);
  const auto a = traceRun(cfg);
  const auto b = traceRun(cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(traceDigest(a), traceDigest(b));
  EXPECT_NE(traceDigest(a), traceDigest(traceRun(quickConfig(ProtocolKind::Rip, 8))));
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheRun) {
  // The RNG stream must not depend on whether a sink is installed — the
  // MRAI jitter draw in particular happens unconditionally.
  const ScenarioConfig cfg = quickConfig(ProtocolKind::Bgp, 11);
  const RunResult untraced = runScenario(cfg);
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();
  EXPECT_EQ(sc.scheduler().executedEvents(), untraced.eventsExecuted);
  EXPECT_EQ(sc.stats().data().delivered, untraced.data.delivered);
  EXPECT_EQ(sc.stats().data().dropNoRoute, untraced.data.dropNoRoute);
}

void expectReplayMatchesPathTracer(ProtocolKind kind, std::uint64_t seed) {
  const ScenarioConfig cfg = quickConfig(kind, seed);
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();

  ReplayOptions opt;
  opt.src = sc.sender();
  opt.dst = sc.receiver();
  opt.nodeCount = sc.network().nodeCount();
  const ReplayResult replay = replayTrace(sink.events(), opt);

  const PathTracer* live = sc.stats().tracer();
  ASSERT_NE(live, nullptr);
  ASSERT_EQ(replay.pathEvents.size(), live->events().size());
  for (std::size_t i = 0; i < replay.pathEvents.size(); ++i) {
    const auto& r = replay.pathEvents[i];
    const auto& l = live->events()[i];
    EXPECT_EQ(r.t, l.t) << "path event " << i;
    EXPECT_EQ(r.path, l.path) << "path event " << i;
    EXPECT_EQ(r.loop, l.loop) << "path event " << i;
    EXPECT_EQ(r.blackhole, l.blackhole) << "path event " << i;
  }
  // The data-plane tallies must agree with the live collector too
  // (control packets are consumed before deliverLocally, so Deliver
  // events are data-only).
  EXPECT_EQ(replay.delivered, sc.stats().data().delivered);
}

TEST(TraceReplay, AgreesWithPathTracerRip) { expectReplayMatchesPathTracer(ProtocolKind::Rip, 7); }

TEST(TraceReplay, AgreesWithPathTracerBgp) { expectReplayMatchesPathTracer(ProtocolKind::Bgp, 5); }

TEST(TraceReplay, OptionsFromMetaAndWindows) {
  JsonValue meta = JsonValue::makeObject();
  meta.object["src"] = JsonValue::makeNumber(0);
  meta.object["dst"] = JsonValue::makeNumber(2);
  meta.object["nodes"] = JsonValue::makeNumber(3);
  const ReplayOptions opt = replayOptionsFromMeta(meta);
  EXPECT_EQ(opt.src, 0);
  EXPECT_EQ(opt.dst, 2);
  EXPECT_EQ(opt.nodeCount, 3u);

  // Hand-built 3-node line: 0 -> 1 -> 2, then 1 loses its route (black
  // hole), then 1 points back at 0 (loop), then the path heals.
  std::vector<TraceEvent> events;
  auto route = [&events](double t, NodeId node, std::int64_t dst, std::int64_t nh) {
    events.push_back(TraceEvent{Time::seconds(t), TraceKind::RouteChange, node, kInvalidNode, dst,
                                kInvalidNode, nh});
  };
  route(1.0, 0, 2, 1);
  route(1.0, 1, 2, 2);
  route(2.0, 1, 2, kInvalidNode);  // blackhole window opens
  route(3.0, 1, 2, 0);             // loop 0<->1 window opens
  route(4.0, 1, 2, 2);             // healed
  const ReplayResult r = replayTrace(events, opt);
  // Two blackhole windows: a zero-length one while the FIB is half-built
  // at t=1 (only 0's route installed yet), then the real 1 s outage.
  ASSERT_EQ(r.blackholeWindows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.blackholeWindows[0].seconds(), 0.0);
  EXPECT_FALSE(r.blackholeWindows[1].openAtEnd);
  EXPECT_DOUBLE_EQ(r.blackholeWindows[1].seconds(), 1.0);
  ASSERT_EQ(r.loopWindows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.loopWindows[0].seconds(), 1.0);
  ASSERT_FALSE(r.pathEvents.empty());
  EXPECT_EQ(r.pathEvents.back().path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(r.kindCounts[static_cast<std::size_t>(TraceKind::RouteChange)], 5u);
}

// ----------------------------------------------------- executor profiling

TEST(ExecutorMetrics, JobPublishesSweepProfile) {
  exp::ExperimentSpec spec;
  spec.name = "obs_metrics_probe";
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 3);
  for (int i = 0; i < 2; ++i) {
    exp::CellSpec cell;
    cell.id = "cell" + std::to_string(i);
    cell.config = cfg;
    cell.startSeed = 10 + static_cast<std::uint64_t>(i);
    spec.cells.push_back(cell);
  }
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult result = executor.execute(spec, 3);

  ASSERT_EQ(result.metrics.kind, JsonValue::Kind::Object);
  const JsonValue& m = result.metrics;
  ASSERT_TRUE(m.has("counters"));
  EXPECT_DOUBLE_EQ(m.at("counters").numberAt("replica.ok"), 6.0);
  EXPECT_DOUBLE_EQ(m.at("counters").numberAt("cell.completed"), 2.0);
  // Scheduler totals flow in through the thread-local MetricsScope.
  EXPECT_GT(m.at("counters").numberAt("sim.events_executed"), 0.0);
  ASSERT_TRUE(m.has("histograms"));
  EXPECT_DOUBLE_EQ(m.at("histograms").at("replica.wall_sec").numberAt("count"), 6.0);
}

// ------------------------------------------------- convergence anatomy

// Live chained analyzer vs offline replay vs offline analyzer, on real
// (short) scenarios. The same cross-check over the 20 default-config
// golden scenarios lives in test_perf_gate.cpp next to the pinned
// digests; this one keeps the equivalence in the fast suite.
void expectAnatomyMatchesReplay(ProtocolKind kind, std::uint64_t seed) {
  const ScenarioConfig cfg = quickConfig(kind, seed);
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.attachTraceSink(&sink);  // chained behind the analyzer, not instead of it
  sc.run();

  const ConvergenceAnalyzer* live = sc.convergenceAnalyzer();
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(live->finished());

  ReplayOptions opt;
  opt.src = sc.sender();
  opt.dst = sc.receiver();
  opt.nodeCount = sc.network().nodeCount();
  const ReplayResult replay = replayTrace(sink.events(), opt);
  const AnatomyReport& on = live->report();
  EXPECT_EQ(on.pathEvents, replay.pathEvents);
  EXPECT_EQ(on.loopWindows, replay.loopWindows);
  EXPECT_EQ(on.blackholeWindows, replay.blackholeWindows);
  EXPECT_EQ(on.kindCounts, replay.kindCounts);
  EXPECT_EQ(on.delivered, replay.delivered);
  EXPECT_EQ(on.dropped, replay.dropped);

  // The offline analyzer over the recorded stream is the same computation
  // rcsim-inspect runs on a trace file: it must reproduce the live
  // episode list (and the whole report) exactly.
  const AnatomyReport offline = analyzeTrace(sink.events(), opt);
  EXPECT_EQ(on.episodes, offline.episodes);
  EXPECT_EQ(on.perNodeControlMessages, offline.perNodeControlMessages);
  EXPECT_EQ(on.perNodeControlBytes, offline.perNodeControlBytes);
  EXPECT_EQ(anatomyDigest(on.summary()), anatomyDigest(offline.summary()));

  // One failure at t=100 inside the traffic window: the profiler must
  // have seen it.
  ASSERT_GE(on.episodes.size(), 1u);
  EXPECT_GT(on.summary().controlMessages, 0u);
}

TEST(Anatomy, OnlineMatchesOfflineRip) { expectAnatomyMatchesReplay(ProtocolKind::Rip, 7); }

TEST(Anatomy, OnlineMatchesOfflineBgp) { expectAnatomyMatchesReplay(ProtocolKind::Bgp, 5); }

TEST(Anatomy, OnlineMatchesOfflineDbf) { expectAnatomyMatchesReplay(ProtocolKind::Dbf, 3); }

TEST(Anatomy, DigestUnchangedWithAnatomyOff) {
  // The profiler is observe-only: switching it off must not move the
  // run digest (which the analyzer's summary is deliberately outside of).
  ScenarioConfig cfg = quickConfig(ProtocolKind::Bgp3, 2);
  const RunResult on = runScenario(cfg);
  cfg.anatomy = false;
  const RunResult off = runScenario(cfg);
  EXPECT_EQ(runResultDigest(on), runResultDigest(off));
  EXPECT_GT(on.anatomy.episodes, 0u);
  EXPECT_EQ(off.anatomy, AnatomySummary{});  // all-zero when disabled
}

TEST(Anatomy, EpisodeSemanticsOnSyntheticStream) {
  ReplayOptions opt;
  opt.src = 0;
  opt.dst = 2;
  opt.nodeCount = 3;

  // 3-node line 0 -> 1 -> 2 with a fully scripted disruption, exercising
  // every episode field.
  std::vector<TraceEvent> events;
  auto emit = [&events](double t, TraceKind kind, NodeId a, NodeId b, std::int64_t x,
                        std::int64_t y, std::int64_t z) {
    events.push_back(TraceEvent{Time::seconds(t), kind, a, b, x, y, z});
  };
  auto route = [&emit](double t, NodeId node, std::int64_t dst, std::int64_t nh) {
    emit(t, TraceKind::RouteChange, node, kInvalidNode, dst, kInvalidNode, nh);
  };
  auto drop = [&emit](double t, DropReason why, std::int64_t data) {
    emit(t, TraceKind::Drop, 1, kInvalidNode, 42, static_cast<std::int64_t>(why), data);
  };

  // Pre-episode FIB build: outside any episode, so no episode churn.
  route(1.0, 0, 2, 1);
  route(1.0, 1, 2, 2);

  // Episode 0: FaultApply + same-instant LinkDown merge into ONE episode.
  emit(10.0, TraceKind::FaultApply, 0, 1, 0, 0, 0);
  emit(10.0, TraceKind::LinkDown, 0, 1, 0, 0, 0);
  emit(10.5, TraceKind::AdjDown, 1, 0, 0, 0, 0);  // hello detection
  route(11.0, 1, 2, kInvalidNode);                // blackhole opens
  drop(11.5, DropReason::NoRoute, 1);             // blackhole drop
  drop(11.5, DropReason::NoRoute, 0);             // control-plane: ignored
  route(12.0, 1, 2, 0);                           // loop 0<->1 opens, blackhole closes
  drop(12.5, DropReason::TtlExpired, 1);          // TTL death inside the loop
  route(13.0, 1, 2, 2);                           // healed; loop closes
  drop(13.5, DropReason::TtlExpired, 1);          // plain TTL drop (no loop open)
  drop(13.6, DropReason::QueueOverflow, 1);
  drop(13.7, DropReason::RandomLoss, 1);
  emit(14.0, TraceKind::Deliver, 2, kInvalidNode, 7, 0, 2);
  emit(14.1, TraceKind::ControlSend, 1, 2, 64, 0, 0);
  emit(14.2, TraceKind::HelloSend, 0, 1, 16, 0, 0);
  emit(14.3, TraceKind::DvTriggered, 1, kInvalidNode, 1, 0, 0);
  emit(14.4, TraceKind::DvPeriodic, 0, kInvalidNode, 3, 0, 0);
  emit(14.5, TraceKind::MraiArm, 1, 2, 1000, 0, -1);
  emit(14.6, TraceKind::MraiFire, 1, 2, 1, 0, -1);

  // Episode 1: repair trigger; its blackhole window is still open at the
  // end of the stream.
  emit(20.0, TraceKind::LinkUp, 0, 1, 0, 0, 0);
  route(21.0, 1, 2, kInvalidNode);

  const AnatomyReport r = analyzeTrace(events, opt);

  ASSERT_EQ(r.episodes.size(), 2u);
  const ConvergenceEpisode& e0 = r.episodes[0];
  EXPECT_EQ(e0.trigger, TraceKind::FaultApply);
  EXPECT_EQ(e0.triggerCount, 2);  // FaultApply + same-instant LinkDown
  EXPECT_EQ(e0.start, Time::seconds(10.0));
  EXPECT_EQ(e0.detectAt, Time::seconds(10.5));  // AdjDown, not RouteChange
  EXPECT_DOUBLE_EQ(e0.detectionSec(), 0.5);
  EXPECT_EQ(e0.firstRouteChangeAt, Time::seconds(11.0));
  EXPECT_EQ(e0.lastRouteChangeAt, Time::seconds(13.0));
  EXPECT_DOUBLE_EQ(e0.convergenceSec(), 2.0);
  EXPECT_EQ(e0.routeChanges, 3u);
  EXPECT_EQ(e0.loopWindows, 1);
  EXPECT_DOUBLE_EQ(e0.loopSeconds, 1.0);
  EXPECT_FALSE(e0.loopOpenAtEnd);
  EXPECT_EQ(e0.blackholeWindows, 1);
  EXPECT_DOUBLE_EQ(e0.blackholeSeconds, 1.0);
  EXPECT_FALSE(e0.blackholeOpenAtEnd);
  EXPECT_EQ(e0.dropsBlackhole, 1u);
  EXPECT_EQ(e0.dropsLoop, 1u);
  EXPECT_EQ(e0.dropsTtl, 1u);
  EXPECT_EQ(e0.dropsQueue, 1u);
  EXPECT_EQ(e0.dropsOther, 1u);
  EXPECT_EQ(e0.delivered, 1u);
  EXPECT_EQ(e0.controlMessages, 1u);
  EXPECT_EQ(e0.controlBytes, 64u);
  EXPECT_EQ(e0.mraiDeferred, 1u);
  EXPECT_EQ(e0.dvTriggered, 1u);

  const ConvergenceEpisode& e1 = r.episodes[1];
  EXPECT_EQ(e1.trigger, TraceKind::LinkUp);
  EXPECT_EQ(e1.triggerCount, 1);
  EXPECT_EQ(e1.detectAt, Time::seconds(21.0));  // first RouteChange detects
  EXPECT_EQ(e1.blackholeWindows, 1);
  EXPECT_TRUE(e1.blackholeOpenAtEnd);  // finish() marks the open window
  EXPECT_DOUBLE_EQ(e1.blackholeSeconds, 0.0);

  // Whole-run accounting: hello/periodic/fire are run-level only.
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.dropped, 5u);  // the control-plane NoRoute drop is excluded
  EXPECT_EQ(r.dropsBlackhole, 1u);
  EXPECT_EQ(r.dropsLoop, 1u);
  EXPECT_EQ(r.dropsTtl, 1u);
  EXPECT_EQ(r.dropsQueue, 1u);
  EXPECT_EQ(r.dropsOther, 1u);
  EXPECT_EQ(r.controlMessages, 1u);
  EXPECT_EQ(r.controlBytes, 64u);
  EXPECT_EQ(r.helloMessages, 1u);
  EXPECT_EQ(r.helloBytes, 16u);
  EXPECT_EQ(r.dvTriggered, 1u);
  EXPECT_EQ(r.dvPeriodic, 1u);
  EXPECT_EQ(r.mraiArmed, 1u);
  EXPECT_EQ(r.mraiFired, 1u);
  ASSERT_EQ(r.perNodeControlMessages.size(), 3u);
  EXPECT_EQ(r.perNodeControlMessages[1], 1u);  // the ControlSend
  EXPECT_EQ(r.perNodeControlBytes[1], 64u);
  EXPECT_EQ(r.perNodeControlMessages[0], 1u);  // hellos bill their sender
  EXPECT_EQ(r.perNodeControlBytes[0], 16u);

  // Window lists: the t=1 half-built-FIB blip, e0's outage, e1's open one.
  ASSERT_EQ(r.blackholeWindows.size(), 3u);
  EXPECT_TRUE(r.blackholeWindows.back().openAtEnd);
  ASSERT_EQ(r.loopWindows.size(), 1u);

  // Summary fold over the same report.
  const AnatomySummary s = r.summary();
  EXPECT_EQ(s.episodes, 2u);
  EXPECT_EQ(s.triggers, 3u);
  EXPECT_EQ(s.detectedEpisodes, 2u);
  EXPECT_DOUBLE_EQ(s.detectionSecTotal, 0.5 + 1.0);
  EXPECT_EQ(s.convergedEpisodes, 2u);
  EXPECT_EQ(s.fibChurn, 4u);
  EXPECT_EQ(s.loopWindows, 1u);
  EXPECT_EQ(s.blackholeWindows, 3u);
  // Closed windows only: 0-length blip + 1 s outage; the open one is skipped.
  EXPECT_DOUBLE_EQ(s.blackholeSeconds, 1.0);
}

TEST(Anatomy, ChainsDownstreamVerbatim) {
  // As a chained TraceSink the analyzer must forward every event
  // unchanged — including events after finish(), which it no longer
  // analyzes but still passes through (a recorder downstream must not
  // lose the tail).
  ReplayOptions opt;
  opt.src = 0;
  opt.dst = 1;
  opt.nodeCount = 2;
  MemoryTraceSink downstream;
  ConvergenceAnalyzer analyzer{opt, &downstream};
  EXPECT_EQ(analyzer.downstream(), &downstream);

  std::vector<TraceEvent> sent;
  auto feed = [&](double t, TraceKind kind) {
    TraceEvent ev{Time::seconds(t), kind, 0, 1, 0, 0, 0};
    sent.push_back(ev);
    analyzer.onTraceEvent(ev);
  };
  feed(1.0, TraceKind::LinkDown);
  feed(2.0, TraceKind::ControlSend);
  analyzer.finish();
  analyzer.finish();  // idempotent
  feed(3.0, TraceKind::ControlSend);

  ASSERT_EQ(downstream.events().size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(traceDigest({downstream.events()[i]}), traceDigest({sent[i]})) << "event " << i;
  }
  // Analysis stopped at finish(): the post-finish ControlSend is not billed.
  EXPECT_EQ(analyzer.report().controlMessages, 1u);
}

TEST(Anatomy, SummaryFoldAndDigestSensitivity) {
  AnatomySummary a;
  a.episodes = 2;
  a.detectionSecTotal = 0.25;
  a.dropsLoop = 3;
  AnatomySummary b;
  b.episodes = 1;
  b.detectionSecTotal = 0.5;
  b.controlBytes = 100;
  AnatomySummary sum = a;
  sum += b;
  EXPECT_EQ(sum.episodes, 3u);
  EXPECT_DOUBLE_EQ(sum.detectionSecTotal, 0.75);
  EXPECT_EQ(sum.dropsLoop, 3u);
  EXPECT_EQ(sum.controlBytes, 100u);

  // The digest pins the executor's serial == pooled fold: equal summaries
  // agree, any field move is visible.
  EXPECT_EQ(anatomyDigest(a), anatomyDigest(a));
  AnatomySummary mutated = a;
  mutated.dropsBlackhole += 1;
  EXPECT_NE(anatomyDigest(mutated), anatomyDigest(a));
  EXPECT_NE(anatomyFingerprint(a), anatomyFingerprint(b));
}

TEST(Anatomy, RouteChangeOutsideNodeCountThrows) {
  // Same corrupt-trace contract as replayTrace.
  ReplayOptions opt;
  opt.src = 0;
  opt.dst = 2;
  opt.nodeCount = 3;
  std::vector<TraceEvent> events;
  events.push_back(
      TraceEvent{Time::seconds(1.0), TraceKind::RouteChange, 5, kInvalidNode, 2, kInvalidNode, 1});
  EXPECT_THROW((void)analyzeTrace(events, opt), std::runtime_error);
}

TEST(ExecutorMetrics, ProgressCountsReplicas) {
  exp::ExperimentSpec spec;
  spec.name = "obs_progress_probe";
  exp::CellSpec cell;
  cell.id = "only";
  cell.config = quickConfig(ProtocolKind::Dbf, 3);
  spec.cells.push_back(cell);

  exp::SweepExecutor executor{2};
  EXPECT_EQ(exp::SweepExecutor::progress(nullptr).total, 0u);
  auto job = executor.submit(spec, 4);
  (void)executor.finish(job);
  const exp::JobProgress done = exp::SweepExecutor::progress(job);
  EXPECT_EQ(done.total, 4u);
  EXPECT_EQ(done.completed, 4u);
}

}  // namespace
}  // namespace rcsim::obs
