// Observability subsystem tests: metrics registry semantics, the
// rcsim-trace-v1 wire format (encode/decode/CRC/torn tail), trace
// determinism across identical seeds, replay agreement with the live
// PathTracer, and the executor's published metrics block.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "exp/executor.hpp"
#include "exp/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/replay.hpp"
#include "obs/trace_io.hpp"
#include "stats/collector.hpp"

namespace rcsim::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("x"), &c);
}

TEST(Metrics, GaugeTracksLastAndMax) {
  Gauge g;
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.maxValue(), 7.5);
}

TEST(Metrics, HistogramEmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, HistogramStatsAndQuantiles) {
  Histogram h;
  for (const double v : {0.001, 0.002, 0.004, 0.008, 1.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.minValue(), 0.001);
  EXPECT_DOUBLE_EQ(h.maxValue(), 1.0);
  EXPECT_NEAR(h.mean(), 1.015 / 5.0, 1e-12);
  // Quantiles are bucket upper bounds (1e-6 * 2^i) clamped to [min, max]:
  // the median of five power-of-two-spaced samples resolves to at most
  // 0.004's bucket bound, 0.004096.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.002);
  EXPECT_LE(p50, 0.004096);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
}

TEST(Metrics, RegistryJsonOmitsEmptySectionsAndSortsNames) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.toJson().object.empty());

  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  const JsonValue doc = reg.toJson();
  ASSERT_TRUE(doc.has("counters"));
  EXPECT_FALSE(doc.has("gauges"));
  EXPECT_FALSE(doc.has("histograms"));
  const auto& counters = doc.at("counters").object;
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a.one");  // std::map iterates sorted

  reg.gauge("g").set(4.0);
  reg.histogram("h").observe(0.5);
  const JsonValue full = reg.toJson();
  EXPECT_DOUBLE_EQ(full.at("gauges").at("g").numberAt("max"), 4.0);
  EXPECT_DOUBLE_EQ(full.at("histograms").at("h").numberAt("count"), 1.0);
}

TEST(Metrics, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(currentMetrics(), nullptr);
  MetricsRegistry outer;
  {
    MetricsScope a{outer};
    EXPECT_EQ(currentMetrics(), &outer);
    MetricsRegistry inner;
    {
      MetricsScope b{inner};
      EXPECT_EQ(currentMetrics(), &inner);
    }
    EXPECT_EQ(currentMetrics(), &outer);
  }
  EXPECT_EQ(currentMetrics(), nullptr);
}

// ------------------------------------------------------------ wire format

TEST(TraceIo, EventLineRoundTrips) {
  const TraceEvent ev{Time::seconds(400.25), TraceKind::RouteChange, 7, kInvalidNode, 42, 3, -1};
  const std::string line = encodeTraceLine(ev);
  TraceEvent back{};
  ASSERT_TRUE(decodeTraceLine(line, back));
  EXPECT_EQ(back, ev);
}

TEST(TraceIo, TamperedLineFailsCrc) {
  const TraceEvent ev{Time::seconds(1.0), TraceKind::Forward, 1, 2, 100, 64, 48};
  std::string line = encodeTraceLine(ev);
  const auto pos = line.find("100");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 3, "101");
  TraceEvent back{};
  EXPECT_FALSE(decodeTraceLine(line, back));
}

TEST(TraceIo, HeaderAndGarbageLinesAreNotEvents) {
  TraceEvent back{};
  EXPECT_FALSE(decodeTraceLine(encodeTraceHeader(JsonValue::makeObject()), back));
  EXPECT_FALSE(decodeTraceLine("not json", back));
  EXPECT_FALSE(decodeTraceLine("", back));
}

TEST(TraceIo, FileRoundTripAndTornTail) {
  const std::string path = std::filesystem::temp_directory_path() / "rcsim_obs_trace.jsonl";
  JsonValue meta = JsonValue::makeObject();
  meta.object["src"] = JsonValue::makeNumber(3);
  meta.object["dst"] = JsonValue::makeNumber(45);
  meta.object["nodes"] = JsonValue::makeNumber(49);

  std::vector<TraceEvent> events;
  {
    FileTraceSink sink{path, meta};
    for (int i = 0; i < 100; ++i) {
      const TraceEvent ev{Time::seconds(i), TraceKind::ControlSend, i % 7, (i + 1) % 7, i, 0, 0};
      events.push_back(ev);
      sink.onTraceEvent(ev);
    }
    sink.close();
    EXPECT_EQ(sink.eventsWritten(), 100u);
  }

  const TraceFile clean = readTraceFile(path);
  EXPECT_EQ(clean.corrupt, 0u);
  ASSERT_EQ(clean.events.size(), events.size());
  EXPECT_EQ(clean.events, events);
  EXPECT_EQ(clean.meta.numberAt("nodes"), 49.0);

  // A mid-write kill tears the last line; the reader skips and counts it.
  {
    std::ofstream torn{path, std::ios::app};
    torn << R"({"crc":"00000000","ev":[1,2,)";  // truncated record
  }
  const TraceFile repaired = readTraceFile(path);
  EXPECT_EQ(repaired.corrupt, 1u);
  EXPECT_EQ(repaired.events, events);

  std::filesystem::remove(path);
}

TEST(TraceIo, MissingOrHeaderlessFileThrows) {
  EXPECT_THROW((void)readTraceFile("/nonexistent/rcsim.trace"), std::runtime_error);
  const std::string path = std::filesystem::temp_directory_path() / "rcsim_obs_headerless.jsonl";
  {
    std::ofstream out{path};
    out << encodeTraceLine(TraceEvent{Time::seconds(1.0), TraceKind::LinkUp, 0, 1, 0, 0, 0})
        << "\n";
  }
  EXPECT_THROW((void)readTraceFile(path), std::runtime_error);
  std::filesystem::remove(path);
}

// --------------------------------------------------- determinism + replay

ScenarioConfig quickConfig(ProtocolKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = 4;
  cfg.seed = seed;
  cfg.trafficStart = Time::seconds(90.0);
  cfg.trafficStop = Time::seconds(150.0);
  cfg.failAt = Time::seconds(100.0);
  cfg.endAt = Time::seconds(200.0);
  return cfg;
}

std::vector<TraceEvent> traceRun(const ScenarioConfig& cfg) {
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();
  return sink.events();
}

TEST(TraceDeterminism, IdenticalSeedsProduceIdenticalDigests) {
  const ScenarioConfig cfg = quickConfig(ProtocolKind::Rip, 7);
  const auto a = traceRun(cfg);
  const auto b = traceRun(cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(traceDigest(a), traceDigest(b));
  EXPECT_NE(traceDigest(a), traceDigest(traceRun(quickConfig(ProtocolKind::Rip, 8))));
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheRun) {
  // The RNG stream must not depend on whether a sink is installed — the
  // MRAI jitter draw in particular happens unconditionally.
  const ScenarioConfig cfg = quickConfig(ProtocolKind::Bgp, 11);
  const RunResult untraced = runScenario(cfg);
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();
  EXPECT_EQ(sc.scheduler().executedEvents(), untraced.eventsExecuted);
  EXPECT_EQ(sc.stats().data().delivered, untraced.data.delivered);
  EXPECT_EQ(sc.stats().data().dropNoRoute, untraced.data.dropNoRoute);
}

void expectReplayMatchesPathTracer(ProtocolKind kind, std::uint64_t seed) {
  const ScenarioConfig cfg = quickConfig(kind, seed);
  Scenario sc{cfg};
  MemoryTraceSink sink;
  sc.network().trace().setSink(&sink);
  sc.run();

  ReplayOptions opt;
  opt.src = sc.sender();
  opt.dst = sc.receiver();
  opt.nodeCount = sc.network().nodeCount();
  const ReplayResult replay = replayTrace(sink.events(), opt);

  const PathTracer* live = sc.stats().tracer();
  ASSERT_NE(live, nullptr);
  ASSERT_EQ(replay.pathEvents.size(), live->events().size());
  for (std::size_t i = 0; i < replay.pathEvents.size(); ++i) {
    const auto& r = replay.pathEvents[i];
    const auto& l = live->events()[i];
    EXPECT_EQ(r.t, l.t) << "path event " << i;
    EXPECT_EQ(r.path, l.path) << "path event " << i;
    EXPECT_EQ(r.loop, l.loop) << "path event " << i;
    EXPECT_EQ(r.blackhole, l.blackhole) << "path event " << i;
  }
  // The data-plane tallies must agree with the live collector too
  // (control packets are consumed before deliverLocally, so Deliver
  // events are data-only).
  EXPECT_EQ(replay.delivered, sc.stats().data().delivered);
}

TEST(TraceReplay, AgreesWithPathTracerRip) { expectReplayMatchesPathTracer(ProtocolKind::Rip, 7); }

TEST(TraceReplay, AgreesWithPathTracerBgp) { expectReplayMatchesPathTracer(ProtocolKind::Bgp, 5); }

TEST(TraceReplay, OptionsFromMetaAndWindows) {
  JsonValue meta = JsonValue::makeObject();
  meta.object["src"] = JsonValue::makeNumber(0);
  meta.object["dst"] = JsonValue::makeNumber(2);
  meta.object["nodes"] = JsonValue::makeNumber(3);
  const ReplayOptions opt = replayOptionsFromMeta(meta);
  EXPECT_EQ(opt.src, 0);
  EXPECT_EQ(opt.dst, 2);
  EXPECT_EQ(opt.nodeCount, 3u);

  // Hand-built 3-node line: 0 -> 1 -> 2, then 1 loses its route (black
  // hole), then 1 points back at 0 (loop), then the path heals.
  std::vector<TraceEvent> events;
  auto route = [&events](double t, NodeId node, std::int64_t dst, std::int64_t nh) {
    events.push_back(TraceEvent{Time::seconds(t), TraceKind::RouteChange, node, kInvalidNode, dst,
                                kInvalidNode, nh});
  };
  route(1.0, 0, 2, 1);
  route(1.0, 1, 2, 2);
  route(2.0, 1, 2, kInvalidNode);  // blackhole window opens
  route(3.0, 1, 2, 0);             // loop 0<->1 window opens
  route(4.0, 1, 2, 2);             // healed
  const ReplayResult r = replayTrace(events, opt);
  // Two blackhole windows: a zero-length one while the FIB is half-built
  // at t=1 (only 0's route installed yet), then the real 1 s outage.
  ASSERT_EQ(r.blackholeWindows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.blackholeWindows[0].seconds(), 0.0);
  EXPECT_FALSE(r.blackholeWindows[1].openAtEnd);
  EXPECT_DOUBLE_EQ(r.blackholeWindows[1].seconds(), 1.0);
  ASSERT_EQ(r.loopWindows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.loopWindows[0].seconds(), 1.0);
  ASSERT_FALSE(r.pathEvents.empty());
  EXPECT_EQ(r.pathEvents.back().path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(r.kindCounts[static_cast<std::size_t>(TraceKind::RouteChange)], 5u);
}

// ----------------------------------------------------- executor profiling

TEST(ExecutorMetrics, JobPublishesSweepProfile) {
  exp::ExperimentSpec spec;
  spec.name = "obs_metrics_probe";
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 3);
  for (int i = 0; i < 2; ++i) {
    exp::CellSpec cell;
    cell.id = "cell" + std::to_string(i);
    cell.config = cfg;
    cell.startSeed = 10 + static_cast<std::uint64_t>(i);
    spec.cells.push_back(cell);
  }
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult result = executor.execute(spec, 3);

  ASSERT_EQ(result.metrics.kind, JsonValue::Kind::Object);
  const JsonValue& m = result.metrics;
  ASSERT_TRUE(m.has("counters"));
  EXPECT_DOUBLE_EQ(m.at("counters").numberAt("replica.ok"), 6.0);
  EXPECT_DOUBLE_EQ(m.at("counters").numberAt("cell.completed"), 2.0);
  // Scheduler totals flow in through the thread-local MetricsScope.
  EXPECT_GT(m.at("counters").numberAt("sim.events_executed"), 0.0);
  ASSERT_TRUE(m.has("histograms"));
  EXPECT_DOUBLE_EQ(m.at("histograms").at("replica.wall_sec").numberAt("count"), 6.0);
}

TEST(ExecutorMetrics, ProgressCountsReplicas) {
  exp::ExperimentSpec spec;
  spec.name = "obs_progress_probe";
  exp::CellSpec cell;
  cell.id = "only";
  cell.config = quickConfig(ProtocolKind::Dbf, 3);
  spec.cells.push_back(cell);

  exp::SweepExecutor executor{2};
  EXPECT_EQ(exp::SweepExecutor::progress(nullptr).total, 0u);
  auto job = executor.submit(spec, 4);
  (void)executor.finish(job);
  const exp::JobProgress done = exp::SweepExecutor::progress(job);
  EXPECT_EQ(done.total, 4u);
  EXPECT_EQ(done.completed, 4u);
}

}  // namespace
}  // namespace rcsim::obs
