// Golden regression values: exact outputs of three deterministic runs
// (degree-4 mesh, seed 42). Any change to protocol logic, timer handling,
// RNG consumption order or the event pipeline will move these numbers —
// that is the point. If a change is *intentional*, re-generate with the
// printed actual values and record the reason in the commit.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace rcsim {
namespace {

RunResult golden(ProtocolKind kind) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = 4;
  cfg.seed = 42;
  return runScenario(cfg);
}

TEST(Golden, RipDegree4Seed42) {
  const RunResult r = golden(ProtocolKind::Rip);
  EXPECT_EQ(r.sent, 3200u);
  EXPECT_EQ(r.data.delivered, 3006u);
  EXPECT_EQ(r.dataAfterFailure.dropNoRoute, 193u);
  EXPECT_EQ(r.dataAfterFailure.dropTtl, 0u);
  EXPECT_EQ(r.dataAfterFailure.dropInFlightCut + r.dataAfterFailure.dropLinkDown, 1u);
  EXPECT_NEAR(r.forwardingConvergenceSec, 9.663645, 1e-6);
  EXPECT_NEAR(r.routingConvergenceSec, 25.174469, 1e-6);
  EXPECT_EQ(r.transientPaths, 5);
  EXPECT_EQ(r.eventsExecuted, 91801u);
}

TEST(Golden, DbfDegree4Seed42) {
  const RunResult r = golden(ProtocolKind::Dbf);
  EXPECT_EQ(r.sent, 3200u);
  EXPECT_EQ(r.data.delivered, 3199u);
  EXPECT_EQ(r.dataAfterFailure.dropNoRoute, 0u);
  EXPECT_NEAR(r.forwardingConvergenceSec, 0.05, 1e-9);
  EXPECT_NEAR(r.routingConvergenceSec, 7.992472, 1e-6);
  EXPECT_EQ(r.transientPaths, 1);
  EXPECT_EQ(r.eventsExecuted, 95132u);
}

TEST(Golden, Bgp3Degree4Seed42) {
  const RunResult r = golden(ProtocolKind::Bgp3);
  EXPECT_EQ(r.sent, 3200u);
  EXPECT_EQ(r.data.delivered, 3199u);
  EXPECT_EQ(r.dataAfterFailure.dropNoRoute, 0u);
  EXPECT_NEAR(r.forwardingConvergenceSec, 0.05, 1e-9);
  EXPECT_NEAR(r.routingConvergenceSec, 3.003035, 1e-6);
  EXPECT_EQ(r.transientPaths, 1);
  EXPECT_EQ(r.eventsExecuted, 111382u);
}

}  // namespace
}  // namespace rcsim
