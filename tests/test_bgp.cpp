#include "routing/bgp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

ProtocolConfig fastBgp() {
  // BGP3-style MRAI so unit tests converge quickly.
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 2.25;
  cfg.bgp.mraiMaxSec = 3.0;
  return cfg;
}

TEST(Bgp, ConvergesOnLineWithFullPaths) {
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(60_sec);
  EXPECT_EQ(tn.nextHop(0, 3), 1);
  auto& bgp0 = tn.protocolAs<Bgp>(0);
  EXPECT_EQ(bgp0.bestPath(3), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(bgp0.bestVia(3), 1);
}

TEST(Bgp, MeshConvergesToShortestPaths) {
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(120_sec);
  const auto dist = bfsDistances(topo, gridId(0, 0, 5));
  auto& bgp = tn.protocolAs<Bgp>(gridId(0, 0, 5));
  for (NodeId d = 0; d < topo.nodeCount; ++d) {
    if (d == gridId(0, 0, 5)) continue;
    EXPECT_EQ(static_cast<int>(bgp.bestPath(d).size()), dist[static_cast<std::size_t>(d)])
        << "dst " << d;
  }
}

TEST(Bgp, KeepsAlternatePathsInAdjRibIn) {
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(60_sec);
  auto& bgp0 = tn.protocolAs<Bgp>(0);
  ASSERT_NE(bgp0.ribInPath(1, 4), nullptr);
  ASSERT_NE(bgp0.ribInPath(2, 4), nullptr);
  EXPECT_EQ(*bgp0.ribInPath(1, 4), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(*bgp0.ribInPath(2, 4), (std::vector<NodeId>{2, 3, 4}));
}

TEST(Bgp, InstantSwitchoverToCachedAlternate) {
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(60_sec);
  ASSERT_EQ(tn.nextHop(0, 4), 1);
  tn.net().findLink(0, 1)->fail();
  tn.runUntil(60_sec + 50_ms + Time::microseconds(1));
  EXPECT_EQ(tn.nextHop(0, 4), 2);
  EXPECT_EQ(tn.protocolAs<Bgp>(0).bestPath(4), (std::vector<NodeId>{2, 3, 4}));
}

TEST(Bgp, ReceiverSideLoopDetectionDiscardsOwnPaths) {
  // In steady state no node may hold a rib-in path containing itself.
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(120_sec);
  for (NodeId n = 0; n < topo.nodeCount; ++n) {
    auto& bgp = tn.protocolAs<Bgp>(n);
    for (const NodeId nb : tn.node(n).neighbors()) {
      for (NodeId d = 0; d < topo.nodeCount; ++d) {
        if (const auto* p = bgp.ribInPath(nb, d)) {
          EXPECT_EQ(std::find(p->begin(), p->end(), n), p->end())
              << "node " << n << " kept a looped path from " << nb << " for dst " << d;
        }
      }
    }
  }
}

TEST(Bgp, WithdrawalPropagatesUnreachabilityWithoutMraiDelay) {
  // Line 0-1-2-3: fail 2-3; node 0 (two hops upstream) must learn the
  // unreachability in well under one MRAI because withdrawals are exempt.
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 20.0;  // deliberately huge
  cfg.bgp.mraiMaxSec = 25.0;
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Bgp, cfg};
  tn.warmUp(60_sec);
  ASSERT_EQ(tn.nextHop(0, 3), 1);
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(60_sec + 1_sec);
  EXPECT_EQ(tn.nextHop(0, 3), kInvalidNode);
  EXPECT_EQ(tn.nextHop(1, 3), kInvalidNode);
}

TEST(Bgp, WithdrawalSubjectToMraiIsSlowAblation) {
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 20.0;
  cfg.bgp.mraiMaxSec = 25.0;
  cfg.bgp.withdrawalsExemptFromMrai = false;
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Bgp, cfg};
  tn.warmUp(60_sec);
  // Make sure node 1's MRAI toward 0 is armed right before the failure, so
  // the withdrawal has to wait for it: trigger an unrelated change by
  // failing and recovering 0-1 is too blunt — instead rely on the warm-up
  // leaving timers idle and verify the *intermediate* state is stale.
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(60_sec + 1_sec);
  // Node 2 itself knows immediately (local detection)...
  EXPECT_EQ(tn.nextHop(2, 3), kInvalidNode);
  // Node 1 does too (2's first update since idle flushes immediately)…
  // but that very update armed 2's MRAI; nothing further is pending, so
  // reachability state is consistent here. The ablation's damage shows in
  // larger scenarios (bench/ablation_damping); at unit level we only check
  // the configuration plumbs through.
  EXPECT_FALSE(tn.protocolAs<Bgp>(1).config().withdrawalsExemptFromMrai);
}

TEST(Bgp, MraiPacesConsecutiveUpdates) {
  // Count updates 1 sends to 0; in steady state there must be none, and
  // during a burst of changes the spacing must respect the MRAI.
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 5.0;
  cfg.bgp.mraiMaxSec = 5.0;  // deterministic spacing
  TestNet tn{testutil::ringTopology(6), ProtocolKind::Bgp, cfg};
  std::vector<Time> updateTimes;
  tn.net().hooks().onControlSend = [&](Time t, NodeId from, NodeId to,
                                       const ControlPayload& payload) {
    if (from != 1 || to != 0) return;
    const auto* seg = dynamic_cast<const TransportSegment*>(&payload);
    if (seg == nullptr || seg->isAck || !seg->inner) return;
    const auto* upd = dynamic_cast<const BgpUpdate*>(seg->inner.get());
    if (upd != nullptr && !upd->advertised.empty()) updateTimes.push_back(t);
  };
  tn.warmUp(120_sec);
  updateTimes.clear();
  tn.net().findLink(3, 4)->fail();  // reshuffles several destinations
  tn.runUntil(200_sec);
  // Consecutive advertisement *batches* from 1 to 0 must be >= MRAI apart
  // (segments within one batch share a timestamp window of < 1 s).
  for (std::size_t i = 1; i < updateTimes.size(); ++i) {
    const double gap = (updateTimes[i] - updateTimes[i - 1]).toSeconds();
    EXPECT_TRUE(gap < 2.0 || gap >= 4.99) << "gap " << gap << " at " << i;
  }
}

TEST(Bgp, SessionResetOnLinkDownClearsRibIn) {
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(60_sec);
  auto& bgp0 = tn.protocolAs<Bgp>(0);
  ASSERT_NE(bgp0.ribInPath(1, 4), nullptr);
  tn.net().findLink(0, 1)->fail();
  tn.runUntil(60_sec + 1_sec);
  EXPECT_EQ(bgp0.ribInPath(1, 4), nullptr);
  EXPECT_EQ(bgp0.ribInPath(1, 1), nullptr);
}

TEST(Bgp, SessionReestablishmentReadvertisesFullTable) {
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(60_sec);
  tn.net().findLink(0, 1)->fail();
  tn.runUntil(70_sec);
  ASSERT_EQ(tn.nextHop(0, 4), 2);
  tn.net().findLink(0, 1)->recover();
  tn.runUntil(120_sec);
  // Direct 2-hop path via 1 wins again, and 0's rib holds 1's full view.
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  auto& bgp0 = tn.protocolAs<Bgp>(0);
  ASSERT_NE(bgp0.ribInPath(1, 4), nullptr);
  EXPECT_EQ(*bgp0.ribInPath(1, 4), (std::vector<NodeId>{1, 4}));
}

TEST(Bgp, NoHopCountInfinityLimit) {
  // Unlike RIP/DBF, the path vector has no 15-hop ceiling: a 20-node line
  // is fully reachable end to end.
  TestNet tn{testutil::lineTopology(20), ProtocolKind::Bgp, fastBgp()};
  tn.warmUp(200_sec);
  EXPECT_EQ(tn.nextHop(0, 19), 1);
  EXPECT_EQ(static_cast<int>(tn.protocolAs<Bgp>(0).bestPath(19).size()), 19);
}

TEST(Bgp, PerDestMraiModeConverges) {
  ProtocolConfig cfg = fastBgp();
  cfg.bgp.perDestMrai = true;
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, cfg};
  tn.warmUp(60_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  tn.net().findLink(1, 4)->fail();
  tn.runUntil(120_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 2);
  EXPECT_EQ(tn.nextHop(1, 4), 0);
}

}  // namespace
}  // namespace rcsim

// ---- steady-state quiescence & pacing invariants (appended suite) ----

namespace rcsim {
namespace {

using testutil::TestNet;
using namespace rcsim::literals;

TEST(BgpQuiescence, NoUpdatesInSteadyState) {
  // Once converged, BGP is change-driven: a long quiet interval must carry
  // zero BGP updates (only transport-level silence too — no retransmits).
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 2.25;
  cfg.bgp.mraiMaxSec = 3.0;
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::Bgp, cfg};
  tn.warmUp(200_sec);
  std::uint64_t messages = 0;
  tn.net().hooks().onControlSend = [&messages](Time, NodeId, NodeId, const ControlPayload&) {
    ++messages;
  };
  tn.runUntil(400_sec);
  EXPECT_EQ(messages, 0u);
}

TEST(BgpQuiescence, MraiJitterStaysInConfiguredBounds) {
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 22.5;
  cfg.bgp.mraiMaxSec = 30.0;
  TestNet tn{testutil::ringTopology(6), ProtocolKind::Bgp, cfg};
  tn.warmUp(400_sec);
  // Force a burst of changes, then measure the spacing of consecutive
  // advertisement batches from one node to one peer.
  std::vector<Time> sends;
  tn.net().hooks().onControlSend = [&sends](Time t, NodeId from, NodeId to,
                                            const ControlPayload& payload) {
    if (from != 2 || to != 1) return;
    const auto* seg = dynamic_cast<const TransportSegment*>(&payload);
    if (seg == nullptr || seg->isAck || !seg->inner) return;
    const auto* upd = dynamic_cast<const BgpUpdate*>(seg->inner.get());
    if (upd != nullptr && !upd->advertised.empty()) sends.push_back(t);
  };
  tn.net().findLink(4, 5)->fail();
  tn.runUntil(600_sec);
  for (std::size_t i = 1; i < sends.size(); ++i) {
    const double gap = (sends[i] - sends[i - 1]).toSeconds();
    if (gap < 1.0) continue;  // same batch
    EXPECT_GE(gap, 22.5);
    EXPECT_LE(gap, 31.0);  // MRAI + processing slack
  }
}

}  // namespace
}  // namespace rcsim
