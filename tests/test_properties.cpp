// Property-style invariants over the (protocol x degree x seed) grid,
// using the full paper timeline. These are the repository's conservation
// laws: if any of them breaks, figure numbers cannot be trusted.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace rcsim {
namespace {

struct GridParam {
  ProtocolKind kind;
  int degree;
  std::uint64_t seed;
};

void PrintTo(const GridParam& p, std::ostream* os) {
  *os << toString(p.kind) << "/deg" << p.degree << "/seed" << p.seed;
}

class RunGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  static RunResult run(const GridParam& p) {
    ScenarioConfig cfg;
    cfg.protocol = p.kind;
    cfg.mesh.degree = p.degree;
    cfg.seed = p.seed;
    return runScenario(cfg);
  }
};

TEST_P(RunGrid, PacketConservation) {
  const RunResult r = run(GetParam());
  // Every data packet is delivered or dropped with a recorded cause; none
  // remain in flight at simulation end (traffic stops 250 s before it).
  EXPECT_EQ(r.residual(), 0) << "sent=" << r.sent << " delivered=" << r.data.delivered
                             << " dropped=" << r.data.totalDropped();
}

TEST_P(RunGrid, WarmupReachesShortestPath) {
  const RunResult r = run(GetParam());
  EXPECT_TRUE(r.preFailurePathShortest);
}

TEST_P(RunGrid, ForwardingPathReconvergesToShortest) {
  const RunResult r = run(GetParam());
  EXPECT_TRUE(r.finalPathShortest);
}

TEST_P(RunGrid, ConvergenceCompletesWithinRun) {
  const RunResult r = run(GetParam());
  // 400 s of post-failure time must be enough for every protocol here.
  EXPECT_LT(r.routingConvergenceSec, 350.0);
  EXPECT_LE(r.forwardingConvergenceSec, r.routingConvergenceSec + 1e-9);
}

TEST_P(RunGrid, NoQueueOverflowAtThisLoad) {
  // 20 pkt/s against 10 Mb/s links: queueing losses would indicate a
  // simulation bug, not congestion.
  const RunResult r = run(GetParam());
  EXPECT_EQ(r.data.dropQueue, 0u);
}

TEST_P(RunGrid, DropsOnlyDuringConvergence) {
  const RunResult r = run(GetParam());
  // No-route/TTL drops must not occur before the failure watermark.
  EXPECT_EQ(r.data.dropNoRoute, r.dataAfterFailure.dropNoRoute);
  EXPECT_EQ(r.data.dropTtl, r.dataAfterFailure.dropTtl);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RunGrid,
    ::testing::Values(
        GridParam{ProtocolKind::Rip, 3, 1}, GridParam{ProtocolKind::Rip, 5, 2},
        GridParam{ProtocolKind::Rip, 8, 3}, GridParam{ProtocolKind::Dbf, 3, 1},
        GridParam{ProtocolKind::Dbf, 5, 2}, GridParam{ProtocolKind::Dbf, 8, 3},
        GridParam{ProtocolKind::Bgp, 3, 1}, GridParam{ProtocolKind::Bgp, 5, 2},
        GridParam{ProtocolKind::Bgp, 8, 3}, GridParam{ProtocolKind::Bgp3, 3, 1},
        GridParam{ProtocolKind::Bgp3, 5, 2}, GridParam{ProtocolKind::Bgp3, 8, 3},
        GridParam{ProtocolKind::LinkState, 3, 1}, GridParam{ProtocolKind::LinkState, 5, 2},
        GridParam{ProtocolKind::Dual, 3, 1}, GridParam{ProtocolKind::Dual, 5, 2},
        GridParam{ProtocolKind::Dual, 8, 3}, GridParam{ProtocolKind::Rip, 16, 4},
        GridParam{ProtocolKind::Dbf, 16, 4}, GridParam{ProtocolKind::Bgp3, 16, 4}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::string{toString(info.param.kind)} + "_deg" +
             std::to_string(info.param.degree) + "_seed" + std::to_string(info.param.seed);
    });

/// DBF's defining property, checked across seeds: with degree >= 5 in this
/// family there is always a valid cached alternate, so a failure causes no
/// no-route drops at all (the only losses are in-flight cuts).
class DbfSwitchover : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbfSwitchover, NoRouteDropFreeAtDegree5Plus) {
  for (const int degree : {5, 6, 8}) {
    ScenarioConfig cfg;
    cfg.protocol = ProtocolKind::Dbf;
    cfg.mesh.degree = degree;
    cfg.seed = GetParam();
    const RunResult r = runScenario(cfg);
    EXPECT_EQ(r.dataAfterFailure.dropNoRoute, 0u) << "degree " << degree;
    EXPECT_LE(r.dataAfterFailure.dropInFlightCut + r.dataAfterFailure.dropLinkDown, 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbfSwitchover, ::testing::Range<std::uint64_t>(1, 9));

/// BGP safety across seeds: no node ever installs a route whose path
/// contains itself (checked end-state; transient checks live in the
/// forwarding-loop counters instead).
class BgpLoopFree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpLoopFree, EndStateHasNoLoopedForwarding) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Bgp3;
  cfg.mesh.degree = 4;
  cfg.seed = GetParam();
  const RunResult r = runScenario(cfg);
  EXPECT_TRUE(r.finalPathShortest);
  EXPECT_EQ(r.residual(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpLoopFree, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rcsim
