// Protocol conformance: one parameterized suite that every routing
// protocol in the registry must pass. These are the contract any new
// protocol added to the factory has to satisfy before the study layer can
// trust it.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

/// Worst-case initial convergence horizon per protocol family: DV needs a
/// few damped triggered rounds, BGP up to a few MRAIs (tests use the BGP3
/// timing below), LS/DUAL converge in link time.
ProtocolConfig conformanceConfig() {
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 2.25;  // BGP3 pacing so the suite stays fast
  cfg.bgp.mraiMaxSec = 3.0;
  return cfg;
}

class Conformance : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  [[nodiscard]] static Time warmup() { return 60_sec; }
};

TEST_P(Conformance, ConvergesToShortestPathsOnMesh) {
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, GetParam(), conformanceConfig()};
  tn.warmUp(warmup());
  // Every pair must route over a true shortest path, loop- and hole-free.
  for (NodeId s = 0; s < topo.nodeCount; s += 6) {
    const auto dist = bfsDistances(topo, s);
    for (NodeId d = 0; d < topo.nodeCount; ++d) {
      if (s == d) continue;
      bool loop = false, blackhole = false;
      const auto path = tn.net().fibWalk(s, d, &loop, &blackhole);
      EXPECT_FALSE(loop) << s << "->" << d;
      EXPECT_FALSE(blackhole) << s << "->" << d;
      EXPECT_EQ(static_cast<int>(path.size()) - 1, dist[static_cast<std::size_t>(d)])
          << s << "->" << d;
    }
  }
}

TEST_P(Conformance, ReroutesAroundSingleFailure) {
  TestNet tn{testutil::ringTopology(6), GetParam(), conformanceConfig()};
  tn.warmUp(warmup());
  ASSERT_EQ(tn.nextHop(0, 5), 5);
  tn.net().findLink(0, 5)->fail();
  tn.runUntil(warmup() + 60_sec);
  EXPECT_EQ(tn.nextHop(0, 5), 1);
  EXPECT_EQ(tn.nextHop(1, 5), 2);
}

TEST_P(Conformance, SettlesUnreachableOnPartition) {
  TestNet tn{testutil::lineTopology(4), GetParam(), conformanceConfig()};
  tn.warmUp(warmup());
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(warmup() + 120_sec);
  EXPECT_EQ(tn.nextHop(0, 3), kInvalidNode);
  EXPECT_EQ(tn.nextHop(1, 2), kInvalidNode);
  EXPECT_EQ(tn.nextHop(3, 0), kInvalidNode);
  // The near side stays intact.
  EXPECT_EQ(tn.nextHop(0, 1), 1);
  EXPECT_EQ(tn.nextHop(3, 2), 2);
}

TEST_P(Conformance, HealsAfterRepair) {
  TestNet tn{testutil::lineTopology(4), GetParam(), conformanceConfig()};
  tn.warmUp(warmup());
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(warmup() + 60_sec);
  ASSERT_EQ(tn.nextHop(0, 3), kInvalidNode);
  tn.net().findLink(1, 2)->recover();
  tn.runUntil(warmup() + 150_sec);
  EXPECT_EQ(tn.nextHop(0, 3), 1);
  EXPECT_EQ(tn.nextHop(1, 3), 2);
  EXPECT_EQ(tn.nextHop(2, 0), 1);
}

TEST_P(Conformance, SurvivesBackToBackFlaps) {
  TestNet tn{testutil::ringTopology(5), GetParam(), conformanceConfig()};
  tn.warmUp(warmup());
  Link* l = tn.net().findLink(0, 4);
  Time t = warmup();
  for (int i = 0; i < 3; ++i) {
    tn.scheduler().scheduleAt(t, [l] { l->fail(); });
    tn.scheduler().scheduleAt(t + 5_sec, [l] { l->recover(); });
    t += 10_sec;
  }
  tn.runUntil(t + 120_sec);
  // Must end converged on the direct route, not wedged by the churn.
  EXPECT_EQ(tn.nextHop(0, 4), 4);
  EXPECT_EQ(tn.nextHop(4, 0), 0);
}

TEST_P(Conformance, NoControlTrafficExplosionInSteadyState) {
  // After convergence, per-second control load must be bounded: zero for
  // the purely event-driven protocols, and no more than the periodic
  // full-table exchange for the timer-driven ones.
  TestNet tn{testutil::ringTopology(6), GetParam(), conformanceConfig()};
  tn.warmUp(200_sec);
  std::uint64_t messages = 0;
  tn.net().hooks().onControlSend = [&messages](Time, NodeId, NodeId, const ControlPayload&) {
    ++messages;
  };
  tn.runUntil(260_sec);
  // 6 nodes x 2 neighbors x (60/30) periodic rounds x <=1 message each,
  // plus jitter slack. Event-driven protocols send ~0.
  EXPECT_LE(messages, 40u);
}

TEST_P(Conformance, FullScenarioConservationAndReconvergence) {
  ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.mesh.degree = 5;
  cfg.seed = 23;
  if (cfg.protocol == ProtocolKind::Bgp) {
    // Keep the suite quick: paper-grade BGP pacing is exercised elsewhere.
    cfg.protoCfg.bgp.mraiMinSec = 2.25;
    cfg.protoCfg.bgp.mraiMaxSec = 3.0;
  }
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(r.residual(), 0);
  EXPECT_TRUE(r.preFailurePathShortest);
  EXPECT_TRUE(r.finalPathShortest);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Conformance,
                         ::testing::Values(ProtocolKind::Rip, ProtocolKind::Dbf,
                                           ProtocolKind::Bgp, ProtocolKind::Bgp3,
                                           ProtocolKind::LinkState, ProtocolKind::Dual),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return std::string{toString(info.param)};
                         });

}  // namespace
}  // namespace rcsim
