// The perf gate's moving parts that must not rot: the JSON schema it emits
// and consumes (bench/perf_gate.cpp, BENCH_simcore.json), and the
// determinism contract behind the scheduler's pooled-event rewrite — the
// optimized engine must reproduce the seed engine's RunResults bit for bit.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hpp"
#include "core/fingerprint.hpp"
#include "core/json_lite.hpp"
#include "core/scenario.hpp"
#include "obs/anatomy.hpp"
#include "obs/replay.hpp"
#include "obs/trace_io.hpp"

namespace rcsim {
namespace {

// A frozen copy of the gate's output schema ("rcsim-bench-simcore-v1").
// If perf_gate's emitter drifts away from this shape, the checked-in
// baseline stops gating anything — fail here first.
constexpr const char* kGoldenBench = R"json({
  "schema": "rcsim-bench-simcore-v1",
  "scheduler": {
    "schedule_run_events_per_sec": 5253000.25,
    "self_resched_events_per_sec": 30126000.50,
    "seed_schedule_run_events_per_sec": 3886599.17,
    "pooled_speedup_vs_seed": 1.35
  },
  "scenario_ms": {
    "RIP": 21.61,
    "DBF": 27.51,
    "BGP": 30.36,
    "BGP3": 30.35
  },
  "topology_ms": {
    "mesh100x100_build": 7.41,
    "dense_random_build": 1.22,
    "abilene_sweep": 48.93,
    "mesh100x100_converge": 141000.0
  },
  "anatomy_overhead": {
    "events_per_sec_on": 5200000.50,
    "events_per_sec_off": 5300000.25,
    "overhead_pct": 1.88
  },
  "rss_mb": 9.40
})json";

TEST(PerfGate, GoldenBenchJsonParses) {
  const JsonValue v = parseJson(kGoldenBench);
  EXPECT_EQ(v.at("schema").str, "rcsim-bench-simcore-v1");
  const JsonValue& sched = v.at("scheduler");
  EXPECT_DOUBLE_EQ(sched.numberAt("schedule_run_events_per_sec"), 5253000.25);
  EXPECT_DOUBLE_EQ(sched.numberAt("self_resched_events_per_sec"), 30126000.50);
  EXPECT_DOUBLE_EQ(sched.numberAt("seed_schedule_run_events_per_sec"), 3886599.17);
  EXPECT_DOUBLE_EQ(sched.numberAt("pooled_speedup_vs_seed"), 1.35);
  const JsonValue& scen = v.at("scenario_ms");
  for (const char* proto : {"RIP", "DBF", "BGP", "BGP3"}) {
    ASSERT_TRUE(scen.has(proto)) << proto;
    EXPECT_GT(scen.numberAt(proto), 0.0) << proto;
  }
  const JsonValue& topo = v.at("topology_ms");
  for (const char* row : {"mesh100x100_build", "dense_random_build", "abilene_sweep",
                          "mesh100x100_converge"}) {
    ASSERT_TRUE(topo.has(row)) << row;
    EXPECT_GT(topo.numberAt(row), 0.0) << row;
  }
  // The anatomy-profiler cost row: on/off events-per-sec plus the derived
  // percentage the gate holds to an absolute <= 3% budget.
  const JsonValue& anat = v.at("anatomy_overhead");
  EXPECT_DOUBLE_EQ(anat.numberAt("events_per_sec_on"), 5200000.50);
  EXPECT_DOUBLE_EQ(anat.numberAt("events_per_sec_off"), 5300000.25);
  EXPECT_DOUBLE_EQ(anat.numberAt("overhead_pct"), 1.88);
  EXPECT_DOUBLE_EQ(v.numberAt("rss_mb"), 9.40);
}

TEST(PerfGate, JsonParserRejectsGarbage) {
  EXPECT_THROW(parseJson("{"), std::runtime_error);
  EXPECT_THROW(parseJson("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(parseJson("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parseJson(""), std::runtime_error);
  EXPECT_THROW(parseJson("{\"a\" 1}"), std::runtime_error);
}

TEST(PerfGate, JsonParserHandlesStructure) {
  const JsonValue v = parseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}})");
  ASSERT_EQ(v.at("a").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").array[2].number, -300.0);
  EXPECT_TRUE(v.at("b").at("c").boolean);
  EXPECT_EQ(v.at("b").at("d").kind, JsonValue::Kind::Null);
  EXPECT_THROW(static_cast<void>(v.at("missing")), std::runtime_error);
}

struct GoldenDigest {
  ProtocolKind protocol;
  std::uint64_t seed;
  const char* digest;
};

// RunResult digests recorded with the seed (pre-pooling, pre-payload-
// sharing) engine at degree 4 and default configuration. The rewritten
// scheduler and the shared-payload send paths must reproduce every run
// bit for bit — any divergence here means an optimization changed
// simulation behavior, not just speed.
constexpr GoldenDigest kSeedDigests[] = {
    {ProtocolKind::Rip, 1, "778e0e455546c13d"},  {ProtocolKind::Rip, 2, "39f28b0bc6015810"},
    {ProtocolKind::Rip, 3, "a38ca0a3320edce5"},  {ProtocolKind::Rip, 4, "9d2ef2ba0e96c6f5"},
    {ProtocolKind::Rip, 5, "0b59d00c62d889d6"},  {ProtocolKind::Dbf, 1, "f12585a56305180c"},
    {ProtocolKind::Dbf, 2, "37646e4c1e31608e"},  {ProtocolKind::Dbf, 3, "e74c13137a67b985"},
    {ProtocolKind::Dbf, 4, "e8c1642e01e303d5"},  {ProtocolKind::Dbf, 5, "7b52ea88b3615e44"},
    {ProtocolKind::Bgp, 1, "94e09cd48c2fccbb"},  {ProtocolKind::Bgp, 2, "40a708a0246c7e3f"},
    {ProtocolKind::Bgp, 3, "3205204eedf3fb7c"},  {ProtocolKind::Bgp, 4, "02ae1988ed6bbeb6"},
    {ProtocolKind::Bgp, 5, "105922b16f8f8a23"},  {ProtocolKind::Bgp3, 1, "96959e6bb56bc36a"},
    {ProtocolKind::Bgp3, 2, "26737ea4bb855578"}, {ProtocolKind::Bgp3, 3, "b16d2082d79e0359"},
    {ProtocolKind::Bgp3, 4, "8bbad565894eba6d"}, {ProtocolKind::Bgp3, 5, "5b459d241a0ccb3b"},
};

TEST(PerfGate, PooledSchedulerMatchesSeedEngineBitForBit) {
  for (const GoldenDigest& g : kSeedDigests) {
    ScenarioConfig cfg;
    cfg.protocol = g.protocol;
    cfg.mesh.degree = 4;
    cfg.seed = g.seed;

    // Traced, analyzer-on run. The pinned digests predate the anatomy
    // profiler, so matching them with the analyzer chained into the trace
    // path proves the profiler observes without perturbing.
    Scenario sc{cfg};
    obs::MemoryTraceSink sink;
    sc.attachTraceSink(&sink);
    sc.run();
    const RunResult r = summarizeRun(sc);
    EXPECT_EQ(runResultDigest(r), g.digest)
        << toString(g.protocol) << " seed " << g.seed << " diverged from the seed engine";

    // Analyzer off must land on the same digest: anatomy is observe-only.
    ScenarioConfig off = cfg;
    off.anatomy = false;
    EXPECT_EQ(runResultDigest(runScenario(off)), g.digest)
        << toString(g.protocol) << " seed " << g.seed << " diverged with anatomy off";

    // The online analyzer's reconstruction must agree element-wise with
    // the offline replay of the recorded stream — the two independent
    // implementations cross-check each other on every golden scenario.
    const obs::ConvergenceAnalyzer* live = sc.convergenceAnalyzer();
    ASSERT_NE(live, nullptr);
    obs::ReplayOptions opt;
    opt.src = sc.sender();
    opt.dst = sc.receiver();
    opt.nodeCount = sc.network().nodeCount();
    const obs::ReplayResult replay = replayTrace(sink.events(), opt);
    const obs::AnatomyReport& on = live->report();
    EXPECT_EQ(on.pathEvents, replay.pathEvents) << toString(g.protocol) << " seed " << g.seed;
    EXPECT_EQ(on.loopWindows, replay.loopWindows) << toString(g.protocol) << " seed " << g.seed;
    EXPECT_EQ(on.blackholeWindows, replay.blackholeWindows)
        << toString(g.protocol) << " seed " << g.seed;
    EXPECT_EQ(on.kindCounts, replay.kindCounts) << toString(g.protocol) << " seed " << g.seed;
    EXPECT_EQ(on.delivered, replay.delivered) << toString(g.protocol) << " seed " << g.seed;
    EXPECT_EQ(on.dropped, replay.dropped) << toString(g.protocol) << " seed " << g.seed;

    // And the offline analyzer over the same events must reproduce the
    // live episode list exactly — live-chained and trace-file queries
    // (rcsim-inspect) are the same computation.
    const obs::AnatomyReport offline = obs::analyzeTrace(sink.events(), opt);
    EXPECT_EQ(on.episodes, offline.episodes) << toString(g.protocol) << " seed " << g.seed;
  }
}

// The Internet-scale determinism pin: the canonical 100x100 degree-4
// scenario (core/experiment.hpp largeMeshConfig — 10,000 nodes through one
// failure to full reconvergence, the perf gate's mesh100x100_converge row)
// must reproduce this digest bit for bit. It was recorded when the CSR
// topology index and the density-aware generator landed; any divergence
// means a topology- or scale-path change altered simulation behavior.
// This is by far the heaviest test in the suite (~2.5 min) — everything it
// runs is real convergence work, not slack timeout.
TEST(PerfGate, LargeMeshScenarioConvergesToPinnedDigest) {
  // The anatomy profiler is on by default here; the digest was recorded
  // before it existed, so reproducing it is also the 10k-node proof that
  // the analyzer-on and analyzer-off engines are bit-identical. (The
  // element-wise online-vs-replay check for this scale lives in the 20
  // golden scenarios above — a dense 10k-node shadow FIB replay would
  // need ~400 MB and an in-memory trace several GB.)
  const RunResult r = runScenario(largeMeshConfig());
  EXPECT_EQ(runResultDigest(r), "78d43b0f0b965e27");
  // The digest already covers these, but assert the headline facts readably:
  // traffic flows end to end and both planes converge after the failure.
  EXPECT_GT(r.data.delivered, 0u);
  EXPECT_EQ(r.data.dropNoRoute, 0u);
  EXPECT_FALSE(r.sawLoop);
  EXPECT_GT(r.routingConvergenceSec, 0.0);
  // The profiler saw the same run: the one injected failure opened at
  // least one episode, the reconvergence churned routes, and the control
  // plane billed its messages.
  EXPECT_GE(r.anatomy.episodes, 1u);
  EXPECT_GT(r.anatomy.fibChurn, 0u);
  EXPECT_GT(r.anatomy.controlMessages, 0u);
}

TEST(PerfGate, FingerprintIsDeterministicAndSensitive) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Rip;
  cfg.mesh.degree = 4;
  cfg.seed = 1;
  const RunResult a = runScenario(cfg);
  const RunResult b = runScenario(cfg);
  EXPECT_EQ(runResultFingerprint(a), runResultFingerprint(b));
  RunResult mutated = a;
  mutated.sent += 1;
  EXPECT_NE(runResultDigest(mutated), runResultDigest(a));
}

}  // namespace
}  // namespace rcsim
