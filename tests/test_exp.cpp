// Experiment engine tests: registry integrity, barrier-free executor
// determinism against serial per-cell runMany, and the JSON artifact
// schema round-trip.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/json_lite.hpp"
#include "core/options.hpp"
#include "core/runner.hpp"
#include "exp/artifact.hpp"
#include "exp/executor.hpp"
#include "exp/journal.hpp"
#include "exp/registry.hpp"
#include "exp/spec.hpp"
#include "sim/watchdog.hpp"

namespace rcsim::exp {
namespace {

/// A scenario small enough to simulate dozens of times in a test, but
/// still crossing the failure with live traffic.
ScenarioConfig shortConfig(ProtocolKind kind, int degree) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = degree;
  cfg.trafficStart = Time::seconds(80.0);
  cfg.failAt = Time::seconds(100.0);
  cfg.trafficStop = Time::seconds(140.0);
  cfg.endAt = Time::seconds(200.0);
  return cfg;
}

TEST(ExperimentRegistry, HasEveryBuiltinInRegenerationOrder) {
  registerBuiltinExperiments();
  const std::vector<std::string> expected{
      "fig3_drops",        "fig4_ttl",          "fig5_throughput",
      "fig6_convergence",  "fig7_delay",        "headline_table",
      "ablation_mrai",     "ablation_msgsize",  "ablation_damping",
      "ablation_flap_damping", "ablation_infinity", "ablation_splithorizon",
      "ext_tcp",           "ext_multifailure",  "ext_random_topo",
      "ext_assertions",    "ext_dual",          "ext_churn",
      "ext_faultplan",     "ext_realtopo",      "ext_detection",
      "appendix_overhead", "appendix_load",
  };
  const auto& all = allExperiments();
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_FALSE(all[i].cells.empty()) << expected[i];
    EXPECT_TRUE(static_cast<bool>(all[i].render)) << expected[i];
    EXPECT_GT(all[i].defaultRuns, 0) << expected[i];
    EXPECT_GE(all[i].paperRuns, all[i].defaultRuns) << expected[i];
  }
  EXPECT_NE(findExperiment("fig3_drops"), nullptr);
  EXPECT_EQ(findExperiment("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistry, RejectsBadSpecs) {
  registerBuiltinExperiments();
  ExperimentSpec unnamed;
  EXPECT_THROW(registerExperiment(std::move(unnamed)), std::invalid_argument);

  ExperimentSpec duplicate;
  duplicate.name = "fig3_drops";
  EXPECT_THROW(registerExperiment(std::move(duplicate)), std::invalid_argument);

  ExperimentSpec clashing;
  clashing.name = "test_clashing_cells";
  CellSpec a;
  a.id = "same";
  CellSpec b;
  b.id = "same";
  clashing.cells.push_back(std::move(a));
  clashing.cells.push_back(std::move(b));
  EXPECT_THROW(registerExperiment(std::move(clashing)), std::invalid_argument);
}

TEST(Aggregate, RejectsMixedFailureTimes) {
  RunResult a;
  a.failSec = 400;
  RunResult b;
  b.failSec = 401;
  EXPECT_THROW((void)Aggregate::over({a, b}), std::invalid_argument);
}

// The tentpole guarantee: flattening every (cell, seed) replica into one
// shared queue must not change any aggregate bit. Compare full-precision
// digests against serial single-threaded per-cell runMany.
TEST(SweepExecutor, MatchesSerialRunManyBitForBit) {
  const int runs = 4;
  ExperimentSpec spec;
  spec.name = "determinism_grid";
  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Bgp3}) {
    for (const int degree : {3, 4, 5}) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree);
      cell.label = toString(kind);
      cell.config = shortConfig(kind, degree);
      spec.cells.push_back(std::move(cell));
    }
  }

  SweepExecutor executor{4};
  const ExperimentResult result = executor.execute(spec, runs);
  ASSERT_EQ(result.cells.size(), spec.cells.size());
  EXPECT_EQ(result.runs, runs);

  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    const auto serial = runMany(spec.cells[c].config, runs, spec.cells[c].startSeed, 1);
    const Aggregate expected = Aggregate::over(serial);
    EXPECT_EQ(aggregateDigest(result.cells[c].agg), aggregateDigest(expected))
        << spec.cells[c].id;
    const CellStats totals = CellStats::over(serial);
    EXPECT_EQ(result.cells[c].totals.sent, totals.sent) << spec.cells[c].id;
    EXPECT_EQ(result.cells[c].totals.delivered, totals.delivered) << spec.cells[c].id;
    EXPECT_EQ(result.cells[c].totals.controlMessages, totals.controlMessages)
        << spec.cells[c].id;
    // The convergence-anatomy fold must be seed-ordered too: pooled ==
    // serial bit for bit, pinned through the same digest machinery.
    obs::AnatomySummary serialConvergence;
    for (const RunResult& rr : serial) serialConvergence += rr.anatomy;
    EXPECT_GT(serialConvergence.episodes, 0u) << spec.cells[c].id;
    EXPECT_EQ(anatomyDigest(result.cells[c].convergence), anatomyDigest(serialConvergence))
        << spec.cells[c].id;
  }
}

// Several experiments in flight at once (the rcsim_bench --all path):
// FIFO completion, each one still bit-identical to its serial baseline.
TEST(SweepExecutor, PipelinesMultipleJobs) {
  ExperimentSpec first;
  first.name = "pipeline_first";
  CellSpec cell;
  cell.id = "RIP/degree=3";
  cell.config = shortConfig(ProtocolKind::Rip, 3);
  first.cells.push_back(cell);

  ExperimentSpec second;
  second.name = "pipeline_second";
  cell.id = "DBF/degree=4";
  cell.config = shortConfig(ProtocolKind::Dbf, 4);
  second.cells.push_back(cell);

  SweepExecutor executor{2};
  auto jobA = executor.submit(first, 3);
  auto jobB = executor.submit(second, 3);
  const ExperimentResult resA = executor.finish(jobA);
  const ExperimentResult resB = executor.finish(jobB);

  EXPECT_EQ(aggregateDigest(resA.cells[0].agg),
            aggregateDigest(Aggregate::over(runMany(first.cells[0].config, 3, 1, 1))));
  EXPECT_EQ(aggregateDigest(resB.cells[0].agg),
            aggregateDigest(Aggregate::over(runMany(second.cells[0].config, 3, 1, 1))));
}

// Cells with custom run functions (Tdown, churn) must fold their results
// in seed order like everything else.
TEST(SweepExecutor, RunsCustomCellRunners) {
  ExperimentSpec spec;
  spec.name = "custom_runner";
  CellSpec cell;
  cell.id = "synthetic";
  cell.startSeed = 10;
  cell.run = [](const ScenarioConfig& cfg) {
    RunResult r;
    r.seed = cfg.seed;
    r.routingConvergenceSec = static_cast<double>(cfg.seed);
    r.failSec = 7;
    return r;
  };
  spec.cells.push_back(std::move(cell));

  SweepExecutor executor{2};
  const ExperimentResult result = executor.execute(spec, 3);
  ASSERT_EQ(result.cells.size(), 1u);
  // Seeds 10, 11, 12 -> mean 11; failSec carried through unchanged.
  EXPECT_DOUBLE_EQ(result.cells[0].agg.routingConvergenceSec, 11.0);
  EXPECT_EQ(result.cells[0].agg.failSec, 7);
  EXPECT_EQ(result.cells[0].agg.runs, 3);
}

TEST(Artifact, RoundTripsThroughJsonLite) {
  ExperimentSpec spec;
  spec.name = "artifact_demo";
  spec.title = "Artifact demo";
  spec.description = "round-trip test";
  spec.jsonSeries = true;
  CellSpec cell;
  cell.id = "BGP3/degree=4";
  cell.label = "BGP3";
  cell.config = shortConfig(ProtocolKind::Bgp3, 4);
  spec.cells.push_back(std::move(cell));

  SweepExecutor executor{2};
  const ExperimentResult result = executor.execute(spec, 2);

  const JsonValue doc = buildArtifact(spec, result);
  const JsonValue parsed = parseJson(dumpJson(doc));

  EXPECT_EQ(parsed.stringAt("schema"), kArtifactSchema);
  EXPECT_EQ(parsed.stringAt("experiment"), "artifact_demo");
  EXPECT_DOUBLE_EQ(parsed.numberAt("runs_per_cell"), 2.0);
  ASSERT_EQ(parsed.at("cells").array.size(), 1u);
  const JsonValue& c = parsed.at("cells").array[0];
  EXPECT_EQ(c.stringAt("id"), "BGP3/degree=4");

  // The embedded config is the canonical key=value list — applying it to
  // a fresh ScenarioConfig must reproduce the cell's scenario exactly.
  ScenarioConfig rebuilt;
  for (const auto& opt : c.at("config").array) applyOptionString(rebuilt, opt.str);
  EXPECT_EQ(rebuilt.protocol, ProtocolKind::Bgp3);
  EXPECT_EQ(rebuilt.mesh.degree, 4);
  EXPECT_EQ(rebuilt.failAt, Time::seconds(100.0));
  EXPECT_EQ(rebuilt.endAt, Time::seconds(200.0));
  EXPECT_EQ(describeOptions(rebuilt), describeOptions(spec.cells[0].config));

  // Aggregate numbers survive dump -> parse exactly.
  const Aggregate& agg = result.cells[0].agg;
  const JsonValue& jagg = c.at("aggregate");
  EXPECT_EQ(jagg.numberAt("delivered"), agg.delivered);
  EXPECT_EQ(jagg.numberAt("routing_convergence_sec"), agg.routingConvergenceSec);
  ASSERT_EQ(jagg.at("throughput").array.size(), agg.throughput.size());
  for (std::size_t i = 0; i < agg.throughput.size(); ++i) {
    EXPECT_EQ(jagg.at("throughput").array[i].number, agg.throughput[i]) << i;
  }
}

TEST(Artifact, DumpJsonNumbersRoundTripExactly) {
  JsonValue arr = JsonValue::makeArray();
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, -0.0, 123456789.123456789,
                         9007199254740993.0, 1e-17}) {
    arr.array.push_back(JsonValue::makeNumber(v));
  }
  const JsonValue parsed = parseJson(dumpJson(arr));
  ASSERT_EQ(parsed.array.size(), arr.array.size());
  for (std::size_t i = 0; i < arr.array.size(); ++i) {
    EXPECT_EQ(parsed.array[i].number, arr.array[i].number) << i;
  }
}

TEST(WallLimit, ParserRejectsNonFiniteAndNonPositiveBudgets) {
  // strtod happily parses "nan"/"inf", and NaN slips past a `<= 0` guard
  // — the parser must reject non-finite budgets explicitly.
  EXPECT_EQ(parseWallLimitSeconds("nan"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("-nan"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("inf"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("infinity"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("-1"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("0"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("banana"), 0.0);
  EXPECT_EQ(parseWallLimitSeconds(""), 0.0);
  EXPECT_EQ(parseWallLimitSeconds(nullptr), 0.0);
  EXPECT_EQ(parseWallLimitSeconds("2.5"), 2.5);
  EXPECT_EQ(parseWallLimitSeconds("1e-3"), 1e-3);
}

// A replica that blows its wall-clock budget is aborted by the watchdog
// and lands in the cell's failure report like any other thrown error —
// the sweep itself survives.
TEST(SweepExecutor, WatchdogTimeoutQuarantinesTheReplica) {
  ExperimentSpec spec;
  spec.name = "watchdog_demo";
  CellSpec cell;
  cell.id = "stuck";
  cell.config = shortConfig(ProtocolKind::Rip, 3);
  cell.run = [](const ScenarioConfig&) -> RunResult {
    // Emulate a pathological replica: spin (bounded, in case the watchdog
    // is broken) polling the deadline exactly like the scheduler does.
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < std::chrono::seconds(10)) {
      watchdog::poll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return RunResult{};
  };
  spec.cells.push_back(std::move(cell));

  SweepExecutor executor{1};
  executor.setReplicaWallLimit(0.05);
  JobOptions opts;
  opts.retry.maxAttempts = 1;  // no point re-running a deterministic hang
  const ExperimentResult result = executor.finish(executor.submit(spec, 1, opts));
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_TRUE(result.cells[0].failed());
  ASSERT_EQ(result.cells[0].failures.size(), 1u);
  EXPECT_NE(result.cells[0].failures[0].error.find("watchdog"), std::string::npos);
  EXPECT_NE(result.cells[0].failures[0].error.find("wall-clock budget"), std::string::npos);
  ASSERT_EQ(result.cells[0].failures[0].attempts.size(), 1u);
}

// A failed cell's artifact entry carries the full failure report — seed,
// final error, and per-attempt trail — while healthy cells additionally
// publish their aggregate_digest for resume verification.
TEST(Artifact, CarriesFailureReportAndAggregateDigest) {
  ExperimentSpec spec;
  spec.name = "failure_artifact_demo";
  CellSpec healthy;
  healthy.id = "healthy";
  healthy.config = shortConfig(ProtocolKind::Rip, 3);
  spec.cells.push_back(std::move(healthy));
  CellSpec broken;
  broken.id = "broken";
  broken.config = shortConfig(ProtocolKind::Rip, 4);
  broken.run = [](const ScenarioConfig& cfg) -> RunResult {
    throw std::runtime_error("synthetic fault seed=" + std::to_string(cfg.seed));
  };
  spec.cells.push_back(std::move(broken));

  SweepExecutor executor{2};
  JobOptions opts;
  opts.retry.maxAttempts = 2;
  opts.retry.backoffBaseSec = 0.001;
  const ExperimentResult result = executor.finish(executor.submit(spec, 2, opts));

  const JsonValue parsed = parseJson(dumpJson(buildArtifact(spec, result)));
  EXPECT_DOUBLE_EQ(parsed.numberAt("failed_cells"), 1.0);
  ASSERT_EQ(parsed.at("cells").array.size(), 2u);

  const JsonValue& ok = parsed.at("cells").array[0];
  EXPECT_EQ(ok.stringAt("id"), "healthy");
  EXPECT_EQ(ok.object.count("failures"), 0u);
  EXPECT_EQ(ok.stringAt("aggregate_digest"), aggregateDigest(result.cells[0].agg));
  // Healthy cells publish the convergence-anatomy block with its digest;
  // the block round-trips through the journal serializer bit-exactly.
  ASSERT_TRUE(ok.has("convergence"));
  EXPECT_EQ(ok.stringAt("convergence_digest"), anatomyDigest(result.cells[0].convergence));
  EXPECT_GT(result.cells[0].convergence.episodes, 0u);
  EXPECT_EQ(anatomySummaryFromJson(ok.at("convergence")), result.cells[0].convergence);

  const JsonValue& bad = parsed.at("cells").array[1];
  EXPECT_EQ(bad.stringAt("id"), "broken");
  EXPECT_EQ(bad.object.count("aggregate"), 0u) << "failed cells must not publish aggregates";
  EXPECT_EQ(bad.object.count("aggregate_digest"), 0u);
  EXPECT_EQ(bad.object.count("convergence"), 0u);
  const JsonValue& failures = bad.at("failures");
  ASSERT_EQ(failures.array.size(), 2u);
  for (std::size_t i = 0; i < failures.array.size(); ++i) {
    const JsonValue& f = failures.array[i];
    EXPECT_DOUBLE_EQ(f.numberAt("seed"), static_cast<double>(i + 1));
    EXPECT_NE(f.stringAt("error").find("synthetic fault"), std::string::npos);
    // Both attempts' errors survive into the artifact, newest last.
    ASSERT_EQ(f.at("attempts").array.size(), 2u);
    EXPECT_EQ(f.at("attempts").array.back().str, f.stringAt("error"));
  }
}

}  // namespace
}  // namespace rcsim::exp
