#include "core/churn.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

ScenarioConfig churnBase(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::LinkState;  // fastest to reconverge
  cfg.mesh.degree = 6;
  cfg.seed = seed;
  cfg.injectFailure = false;
  cfg.trafficStart = 50_sec;
  cfg.trafficStop = 250_sec;
  cfg.failAt = 50_sec;  // watermark only
  cfg.endAt = 300_sec;
  return cfg;
}

TEST(Churn, InjectsFailuresAndRepairs) {
  Scenario sc{churnBase(3)};
  ChurnInjector::Config cfg;
  cfg.meanUpSec = 30.0;
  cfg.meanDownSec = 5.0;
  cfg.start = 50_sec;
  cfg.stop = 250_sec;
  ChurnInjector churn{sc.network(), Rng{99}, cfg};
  churn.install();
  sc.run();
  EXPECT_GT(churn.failuresInjected(), 10u);
  // Every failure before the stop gets a repair eventually (repairs may lag
  // the last failures by one MTTR, still inside the 50 s drain window).
  EXPECT_GE(churn.repairsInjected() + 5, churn.failuresInjected());
}

TEST(Churn, DeterministicPerSeed) {
  auto run = [] {
    Scenario sc{churnBase(5)};
    ChurnInjector::Config cfg;
    cfg.start = 50_sec;
    cfg.stop = 250_sec;
    ChurnInjector churn{sc.network(), Rng{7}, cfg};
    churn.install();
    sc.run();
    return std::make_pair(churn.failuresInjected(), sc.stats().data().delivered);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(Churn, NoNewFailuresAfterStop) {
  Scenario sc{churnBase(7)};
  ChurnInjector::Config cfg;
  cfg.meanUpSec = 20.0;
  cfg.meanDownSec = 2.0;
  cfg.start = 50_sec;
  cfg.stop = 150_sec;
  ChurnInjector churn{sc.network(), Rng{11}, cfg};
  churn.install();
  sc.run();
  // After stop + repairs drain, every link must be up again.
  for (const auto& link : sc.network().links()) {
    EXPECT_TRUE(link->isUp());
  }
  EXPECT_EQ(churn.failuresInjected(), churn.repairsInjected());
}

// Stop boundary: `at >= stop` gates new failures, so a zero-length churn
// window (stop == start) must inject nothing at all — including a draw
// landing exactly on the boundary.
TEST(Churn, ZeroWindowInjectsNothing) {
  Scenario sc{churnBase(11)};
  ChurnInjector::Config cfg;
  cfg.start = 50_sec;
  cfg.stop = 50_sec;
  ChurnInjector churn{sc.network(), Rng{17}, cfg};
  churn.install();
  sc.run();
  EXPECT_EQ(churn.failuresInjected(), 0u);
  EXPECT_EQ(churn.repairsInjected(), 0u);
}

// Regression: when another fault source (fault plan, scenario failure)
// touched a link first, churn's already-down / already-up early exits used
// to return without rescheduling, silently ending churn for that link.
// With the fix the cycle re-arms, so churn keeps injecting long after the
// external window closes.
TEST(Churn, SurvivesExternalInterference) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  const NodeId a = net.addNode();
  const NodeId b = net.addNode();
  Link& link = net.addLink(a, b, LinkConfig{});
  net.finalize();

  ChurnInjector::Config cfg;
  cfg.meanUpSec = 5.0;
  cfg.meanDownSec = 1.0;
  cfg.start = Time::zero();
  cfg.stop = 300_sec;
  ChurnInjector churn{net, Rng{42}, cfg};
  churn.install();

  // Hold the link down externally across a window churn draws will land
  // in, and recover it externally too — both collision directions.
  sched.scheduleAt(10_sec, [&link] {
    if (link.isUp()) link.fail();
  });
  sched.scheduleAt(60_sec, [&link] {
    if (!link.isUp()) link.recover();
  });
  sched.run(400_sec);

  // Mean cycle ~6 s over a 300 s window: dozens of failures if churn kept
  // running past the collisions; pre-fix it died on the first one.
  EXPECT_GT(churn.failuresInjected(), 10u);
  EXPECT_EQ(churn.failuresInjected(), churn.repairsInjected());
}

TEST(Churn, PacketConservationHolds) {
  Scenario sc{churnBase(9)};
  ChurnInjector::Config cfg;
  cfg.start = 50_sec;
  cfg.stop = 250_sec;
  ChurnInjector churn{sc.network(), Rng{13}, cfg};
  churn.install();
  sc.run();
  const auto& d = sc.stats().data();
  EXPECT_EQ(sc.packetsSent(), d.delivered + d.totalDropped());
}

}  // namespace
}  // namespace rcsim
