#include "core/churn.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

ScenarioConfig churnBase(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::LinkState;  // fastest to reconverge
  cfg.mesh.degree = 6;
  cfg.seed = seed;
  cfg.injectFailure = false;
  cfg.trafficStart = 50_sec;
  cfg.trafficStop = 250_sec;
  cfg.failAt = 50_sec;  // watermark only
  cfg.endAt = 300_sec;
  return cfg;
}

TEST(Churn, InjectsFailuresAndRepairs) {
  Scenario sc{churnBase(3)};
  ChurnInjector::Config cfg;
  cfg.meanUpSec = 30.0;
  cfg.meanDownSec = 5.0;
  cfg.start = 50_sec;
  cfg.stop = 250_sec;
  ChurnInjector churn{sc.network(), Rng{99}, cfg};
  churn.install();
  sc.run();
  EXPECT_GT(churn.failuresInjected(), 10u);
  // Every failure before the stop gets a repair eventually (repairs may lag
  // the last failures by one MTTR, still inside the 50 s drain window).
  EXPECT_GE(churn.repairsInjected() + 5, churn.failuresInjected());
}

TEST(Churn, DeterministicPerSeed) {
  auto run = [] {
    Scenario sc{churnBase(5)};
    ChurnInjector::Config cfg;
    cfg.start = 50_sec;
    cfg.stop = 250_sec;
    ChurnInjector churn{sc.network(), Rng{7}, cfg};
    churn.install();
    sc.run();
    return std::make_pair(churn.failuresInjected(), sc.stats().data().delivered);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(Churn, NoNewFailuresAfterStop) {
  Scenario sc{churnBase(7)};
  ChurnInjector::Config cfg;
  cfg.meanUpSec = 20.0;
  cfg.meanDownSec = 2.0;
  cfg.start = 50_sec;
  cfg.stop = 150_sec;
  ChurnInjector churn{sc.network(), Rng{11}, cfg};
  churn.install();
  sc.run();
  // After stop + repairs drain, every link must be up again.
  for (const auto& link : sc.network().links()) {
    EXPECT_TRUE(link->isUp());
  }
  EXPECT_EQ(churn.failuresInjected(), churn.repairsInjected());
}

TEST(Churn, PacketConservationHolds) {
  Scenario sc{churnBase(9)};
  ChurnInjector::Config cfg;
  cfg.start = 50_sec;
  cfg.stop = 250_sec;
  ChurnInjector churn{sc.network(), Rng{13}, cfg};
  churn.install();
  sc.run();
  const auto& d = sc.stats().data();
  EXPECT_EQ(sc.packetsSent(), d.delivered + d.totalDropped());
}

}  // namespace
}  // namespace rcsim
