#include "net/detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fingerprint.hpp"
#include "core/scenario.hpp"
#include "fault/plan.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/routing_protocol.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using fault::FaultPlan;

// ------------------------------------------------- direct state machine

/// Records every link-up/down notification with its timestamp; never
/// originates control traffic, so only pure hellos keep adjacencies alive.
class ProbeProtocol final : public RoutingProtocol {
 public:
  struct Event {
    Time at;
    NodeId neighbor;
    bool up;
  };

  ProbeProtocol(Node& node, std::vector<Event>& sink) : RoutingProtocol{node}, sink_{sink} {}

  void start() override {}
  void onLinkDown(NodeId neighbor) override {
    sink_.push_back({node_.scheduler().now(), neighbor, false});
  }
  void onLinkUp(NodeId neighbor) override {
    sink_.push_back({node_.scheduler().now(), neighbor, true});
  }
  void onMessage(NodeId, std::shared_ptr<const ControlPayload>) override {}
  [[nodiscard]] std::string name() const override { return "probe"; }

 private:
  std::vector<Event>& sink_;
};

struct DetectorFixture : ::testing::Test {
  DetectorFixture() : net{sched, Rng{7}} {
    a = net.addNode();
    b = net.addNode();
    LinkConfig lc;
    lc.detectDelay = Time::seconds(1000.0);  // oracle would fire way late
    link = &net.addLink(a, b, lc);
    net.finalize();
    net.node(a).setProtocol(std::make_unique<ProbeProtocol>(net.node(a), events));
    net.node(b).setProtocol(std::make_unique<ProbeProtocol>(net.node(b), events));
  }

  Scheduler sched;
  Network net;
  NodeId a{}, b{};
  Link* link = nullptr;
  std::vector<ProbeProtocol::Event> events;
};

TEST_F(DetectorFixture, DeclaresDownWithinDeadIntervalNotOracleDelay) {
  HelloConfig cfg;
  cfg.enabled = true;
  cfg.interval = Time::seconds(0.5);
  cfg.dead = Time::seconds(1.75);
  cfg.jitter = 0.0;
  HelloDetector det{net, cfg};
  net.setDetector(&det);
  det.start();

  sched.scheduleAt(Time::seconds(10.0), [this] { link->fail(); });
  sched.scheduleAt(Time::seconds(30.0), [this] { sched.stop(); });
  sched.run();

  // Both ends noticed, via hellos: well before the 1000 s oracle delay.
  // Silence is measured from the last hello heard (up to one interval
  // before the failure), so the notification lands inside
  // [fail + dead - interval, fail + dead + check slack].
  ASSERT_EQ(events.size(), 2u);
  for (const auto& ev : events) {
    EXPECT_FALSE(ev.up);
    EXPECT_GE(ev.at, Time::seconds(10.0) + cfg.dead - cfg.interval);
    EXPECT_LE(ev.at, Time::seconds(10.0) + cfg.dead + Time::seconds(1.0));
  }
  EXPECT_EQ(det.adjDowns(), 2u);
  EXPECT_EQ(det.falsePositives(), 0u);
  EXPECT_EQ(det.state(a, b), HelloDetector::AdjState::Down);
  EXPECT_EQ(det.state(b, a), HelloDetector::AdjState::Down);
}

TEST_F(DetectorFixture, RecoveredLinkComesBackUpOnNextHello) {
  HelloConfig cfg;
  cfg.enabled = true;
  cfg.interval = Time::seconds(0.5);
  cfg.dead = Time::seconds(1.75);
  cfg.jitter = 0.0;
  HelloDetector det{net, cfg};
  net.setDetector(&det);
  det.start();

  sched.scheduleAt(Time::seconds(10.0), [this] { link->fail(); });
  sched.scheduleAt(Time::seconds(20.0), [this] { link->recover(); });
  sched.scheduleAt(Time::seconds(40.0), [this] { sched.stop(); });
  sched.run();

  ASSERT_EQ(events.size(), 4u);  // two downs, then two ups
  EXPECT_TRUE(events[2].up);
  EXPECT_TRUE(events[3].up);
  // Up again within roughly one hello period of the repair.
  EXPECT_LE(events[3].at, Time::seconds(20.0) + cfg.interval + Time::seconds(0.5));
  EXPECT_EQ(det.adjUps(), 2u);
  EXPECT_EQ(det.state(a, b), HelloDetector::AdjState::Up);
}

TEST_F(DetectorFixture, QuietHealthyLinkStaysUp) {
  HelloConfig cfg;
  cfg.enabled = true;
  cfg.interval = Time::seconds(0.5);
  cfg.dead = Time::seconds(1.75);
  HelloDetector det{net, cfg};
  net.setDetector(&det);
  det.start();

  sched.scheduleAt(Time::seconds(60.0), [this] { sched.stop(); });
  sched.run();

  EXPECT_TRUE(events.empty());
  EXPECT_EQ(det.adjDowns(), 0u);
  EXPECT_EQ(det.falsePositives(), 0u);
  EXPECT_GT(det.hellosSent(), 100u);  // ~2/s/direction for 60 s
}

// ---------------------------------------------------- scenario integration

TEST(Detector, AbsentUnlessEnabled) {
  ScenarioConfig cfg;
  cfg.endAt = 1_sec;
  cfg.trafficStart = 2_sec;  // no traffic needed
  cfg.trafficStop = 2_sec;
  cfg.injectFailure = false;
  Scenario sc{cfg};
  EXPECT_EQ(sc.helloDetector(), nullptr);
}

TEST(Detector, SurvivesFailureAndReconvergesUnderInvariants) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::LinkState;
  cfg.hello.enabled = true;
  cfg.hello.interval = Time::seconds(0.5);
  cfg.hello.dead = Time::seconds(1.75);
  cfg.checkInvariants = true;
  cfg.trafficStart = 390_sec;
  cfg.trafficStop = 450_sec;
  cfg.endAt = 470_sec;
  Scenario sc{cfg};
  sc.run();  // throws on any invariant violation

  const auto* det = sc.helloDetector();
  ASSERT_NE(det, nullptr);
  EXPECT_GE(det->adjDowns(), 2u);  // both ends of the failed link
  EXPECT_EQ(det->falsePositives(), 0u);
  const auto& d = sc.stats().data();
  EXPECT_GT(d.delivered, 0u);
  // Detection costs a dead interval of black-holing, then LS reconverges.
  EXPECT_LT(d.dropNoRoute + d.dropLinkDown, sc.packetsSent() / 4);
}

TEST(Detector, ControlLossCausesFalsePositivesAndRecovery) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::LinkState;
  cfg.hello.enabled = true;
  cfg.hello.interval = Time::seconds(0.5);
  cfg.hello.dead = Time::seconds(1.25);  // tight: 2-3 losses kill the adjacency
  cfg.injectFailure = false;
  cfg.trafficStart = 30_sec;
  cfg.trafficStop = 200_sec;
  cfg.endAt = 220_sec;
  cfg.faultPlan = FaultPlan::parse("30:ctrl-loss:*:0.75;200:ctrl-loss:*:0");
  Scenario sc{cfg};
  sc.run();

  const auto* det = sc.helloDetector();
  ASSERT_NE(det, nullptr);
  // A 75% control-plane loss starves hellos somewhere in 170 s of mesh...
  EXPECT_GT(det->falsePositives(), 0u);
  // ...and survivors come back once hellos get through again.
  EXPECT_GT(det->adjUps(), 0u);
}

TEST(Detector, DeterministicAcrossRuns) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Rip;
  cfg.hello.enabled = true;
  cfg.trafficStart = 390_sec;
  cfg.trafficStop = 430_sec;
  cfg.endAt = 450_sec;
  const RunResult r1 = runScenario(cfg);
  const RunResult r2 = runScenario(cfg);
  EXPECT_EQ(runResultFingerprint(r1), runResultFingerprint(r2));
}

// ------------------------------------------------------------- damping

/// 8-ring with the pinned flow crossing a flapping link: the topology the
/// ext_detection experiment uses to expose each damping mechanism.
ScenarioConfig ringConfig(ProtocolKind kind) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.topology = TopologyKind::Inline;
  cfg.inlineTopo.nodes = 8;
  cfg.inlineTopo.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {0, 7}};
  cfg.pinSrc = 0;
  cfg.pinDst = 3;
  cfg.injectFailure = false;
  cfg.trafficStart = 390_sec;
  cfg.trafficStop = 550_sec;
  cfg.endAt = 600_sec;
  cfg.faultPlan = FaultPlan::parse("400:flapburst:1-2:12:6");
  return cfg;
}

TEST(Damping, RfdSuppressesFlapDrivenLoss) {
  ScenarioConfig raw = ringConfig(ProtocolKind::Bgp3);
  ScenarioConfig damped = raw;
  damped.protoCfg.bgp.flapDampingEnabled = true;

  Scenario rawSc{raw};
  rawSc.run();
  Scenario dampedSc{damped};
  dampedSc.run();

  const auto& rd = rawSc.stats().data();
  const auto& dd = dampedSc.stats().data();
  // RFD parks the flow on the stable long path: more delivered, fewer
  // loops and black holes across the burst.
  EXPECT_GT(dd.delivered, rd.delivered);
  EXPECT_LT(dd.dropTtl, rd.dropTtl);
}

TEST(Damping, HoldDownEliminatesCountingLoops) {
  // Bridge with no alternate path and split horizon off: every flap of
  // 2-3 re-ignites counting between 0, 1 and 2 unless hold-down refuses
  // the stale resurrection.
  ScenarioConfig raw;
  raw.protocol = ProtocolKind::Rip;
  raw.topology = TopologyKind::Inline;
  raw.inlineTopo.nodes = 4;
  raw.inlineTopo.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  raw.pinSrc = 0;
  raw.pinDst = 3;
  raw.protoCfg.dv.splitHorizon = SplitHorizonMode::None;
  raw.injectFailure = false;
  raw.trafficStart = 390_sec;
  raw.trafficStop = 550_sec;
  raw.endAt = 600_sec;
  raw.faultPlan = FaultPlan::parse("400:flapburst:2-3:12:6");
  ScenarioConfig damped = raw;
  damped.protoCfg.dv.holdDownSec = 2.0;

  Scenario rawSc{raw};
  rawSc.run();
  Scenario dampedSc{damped};
  dampedSc.run();

  EXPECT_GT(rawSc.stats().data().dropTtl, 0u);
  EXPECT_EQ(dampedSc.stats().data().dropTtl, 0u);
}

TEST(Damping, SnapshotDigestsBracketTheFirstFault) {
  // The flap burst tears the pinned path down and the run ends with the
  // link up again: before/after snapshots exist and the restored tables
  // match the pre-fault ones. A 7-ring (odd cycle) so every shortest path
  // is unique — the converged FIB is history-independent.
  ScenarioConfig cfg = ringConfig(ProtocolKind::Bgp3);
  cfg.inlineTopo.nodes = 7;
  cfg.inlineTopo.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {0, 6}};
  Scenario sc{cfg};
  sc.run();
  EXPECT_FALSE(sc.fibDigestBefore().empty());
  EXPECT_FALSE(sc.fibDigestAfter().empty());
  EXPECT_EQ(sc.fibDigestBefore(), sc.fibDigestAfter());

  // And the pair rides through RunResult for the artifact's snapshots block.
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(r.fibDigestBefore, sc.fibDigestBefore());
  EXPECT_EQ(r.fibDigestAfter, sc.fibDigestAfter());
}

}  // namespace
}  // namespace rcsim
