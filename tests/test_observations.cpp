// Integration tests asserting the paper's five Observations *qualitatively*
// on multi-seed means (the quantitative record lives in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/runner.hpp"

namespace rcsim {
namespace {

Aggregate sweep(ProtocolKind kind, int degree, int runs = 8) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = degree;
  return Aggregate::over(runMany(cfg, runs, /*startSeed=*/1));
}

// Observation 1: packet drops decrease as node degree increases; with
// enough connectivity the cache-keeping protocols drop virtually nothing,
// while RIP improves only modestly (it still waits for announcements).
TEST(Observation1, DropsDecreaseWithConnectivity) {
  // RIP's decrease is gradual but reliable over a dense/sparse gap.
  const auto rip3 = sweep(ProtocolKind::Rip, 3, 12);
  const auto rip16 = sweep(ProtocolKind::Rip, 16, 12);
  EXPECT_GT(rip3.dropsNoRoute, rip16.dropsNoRoute);

  // The cache-keeping protocols drop only in the sparse regime; whether a
  // *particular* degree-3 failure leaves a valid cached alternate is
  // seed-dependent, so compare means with >= and pin the dense regime to
  // (virtually) zero.
  const auto dbf3 = sweep(ProtocolKind::Dbf, 3, 16);
  const auto dbf6 = sweep(ProtocolKind::Dbf, 6, 16);
  EXPECT_GE(dbf3.dropsNoRoute, dbf6.dropsNoRoute);
  EXPECT_LT(dbf6.dropsNoRoute, 1.0);

  const auto bgp3deg3 = sweep(ProtocolKind::Bgp3, 3);
  const auto bgp3deg6 = sweep(ProtocolKind::Bgp3, 6);
  EXPECT_GE(bgp3deg3.dropsNoRoute, bgp3deg6.dropsNoRoute);
  EXPECT_LT(bgp3deg6.dropsNoRoute, 1.0);
}

TEST(Observation1, RipKeepsDroppingEvenWhenDense) {
  const auto rip6 = sweep(ProtocolKind::Rip, 6);
  const auto rip10 = sweep(ProtocolKind::Rip, 10);
  const auto dbf6 = sweep(ProtocolKind::Dbf, 6);
  // RIP's drops stay orders of magnitude above DBF's at the same degree.
  EXPECT_GT(rip6.dropsNoRoute, 30.0);
  EXPECT_GT(rip10.dropsNoRoute, 20.0);
  EXPECT_LT(dbf6.dropsNoRoute, 1.0);
}

// Observation 2: TTL expirations (loops) are a sparse-regime phenomenon;
// RIP essentially never loops (it blackholes instead); BGP loops roughly an
// MRAI-ratio more than BGP3.
TEST(Observation2, LoopRegimeIsSparseAndBgpDominated) {
  const auto rip = sweep(ProtocolKind::Rip, 4);
  const auto dbf = sweep(ProtocolKind::Dbf, 4);
  const auto bgpSparse = sweep(ProtocolKind::Bgp, 3, 12);
  const auto bgp3Sparse = sweep(ProtocolKind::Bgp3, 3, 12);

  EXPECT_EQ(rip.dropsTtl, 0.0);
  EXPECT_EQ(dbf.dropsTtl, 0.0);
  // In the sparse regime BGP's loop losses dominate BGP3's.
  EXPECT_GE(bgpSparse.dropsTtl, bgp3Sparse.dropsTtl);

  for (const auto kind : {ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp,
                          ProtocolKind::Bgp3}) {
    EXPECT_EQ(sweep(kind, 8, 4).dropsTtl, 0.0) << toString(kind);
  }
}

// Observation 3: instantaneous throughput. Sparse: every protocol dips at
// the failure; RIP stays near zero until the periodic update restores
// reachability (~30 s); dense: DBF/BGP3 keep effectively full throughput.
TEST(Observation3, ThroughputDipAndRecovery) {
  const auto rip = sweep(ProtocolKind::Rip, 3);
  const int f = rip.failSec;
  // Pre-failure steady state: 20 pkt/s.
  EXPECT_NEAR(rip.throughput[static_cast<std::size_t>(f - 5)], 20.0, 0.5);
  // Just after the failure RIP delivers (almost) nothing...
  EXPECT_LT(rip.throughput[static_cast<std::size_t>(f + 3)], 5.0);
  // ...but by ~40 s the periodic announcements have restored nearly all flow.
  EXPECT_GT(rip.throughput[static_cast<std::size_t>(f + 40)], 17.0);

  const auto dbf = sweep(ProtocolKind::Dbf, 6);
  EXPECT_GT(dbf.throughput[static_cast<std::size_t>(f + 2)], 19.0);
  const auto bgp3 = sweep(ProtocolKind::Bgp3, 6);
  EXPECT_GT(bgp3.throughput[static_cast<std::size_t>(f + 10)], 19.0);
}

// Observation 4: a smaller MRAI shortens both convergence measures a lot,
// yet in dense topologies the packet-delivery difference is negligible.
TEST(Observation4, FasterConvergenceIsNotBetterDelivery) {
  const auto bgp = sweep(ProtocolKind::Bgp, 6);
  const auto bgp3 = sweep(ProtocolKind::Bgp3, 6);
  EXPECT_GT(bgp.routingConvergenceSec, 3.0 * bgp3.routingConvergenceSec);
  EXPECT_GE(bgp.forwardingConvergenceSec, bgp3.forwardingConvergenceSec);
  // ...while drops hardly differ:
  EXPECT_LT(bgp.dropsNoRoute + bgp.dropsTtl, 1.0);
  EXPECT_LT(bgp3.dropsNoRoute + bgp3.dropsTtl, 1.0);
}

// Observation 5: packets delivered during convergence ride sub-optimal
// paths, so their delay exceeds the steady-state delay.
TEST(Observation5, ConvergencePacketsTakeLongerPaths) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Dbf;
  cfg.mesh.degree = 4;
  const auto agg = Aggregate::over(runMany(cfg, 12));
  const int f = agg.failSec;
  const double steady = agg.meanDelay[static_cast<std::size_t>(f - 5)];
  double duringMax = 0.0;
  for (int s = f; s < f + 10; ++s) {
    duringMax = std::max(duringMax, agg.meanDelay[static_cast<std::size_t>(s)]);
  }
  EXPECT_GT(steady, 0.0);
  EXPECT_GT(duringMax, steady);
}

}  // namespace
}  // namespace rcsim
