// Wire-format accounting tests: message sizes feed link serialization and
// the routing-load figures, so they are part of the observable model.
#include <gtest/gtest.h>

#include "net/reliable.hpp"
#include "routing/messages.hpp"

namespace rcsim {
namespace {

TEST(Messages, DvUpdateSizeTracksEntryCount) {
  DvUpdate u;
  EXPECT_EQ(u.sizeBytes(), 4u);  // bare header
  u.entries.push_back(DvEntry{1, 3});
  EXPECT_EQ(u.sizeBytes(), 24u);
  u.entries.resize(25, DvEntry{2, 5});
  EXPECT_EQ(u.sizeBytes(), 4u + 25u * 20u);
}

TEST(Messages, DvUpdateDescribeListsRoutes) {
  DvUpdate u;
  u.entries.push_back(DvEntry{7, 16});
  const auto text = u.describe();
  EXPECT_NE(text.find("dv-update(1)"), std::string::npos);
  EXPECT_NE(text.find("7:16"), std::string::npos);
}

TEST(Messages, BgpUpdateSizeTracksPathLengths) {
  BgpUpdate u;
  const auto base = u.sizeBytes();
  u.advertised.push_back(BgpRoute{5, {1, 2, 5}});
  EXPECT_EQ(u.sizeBytes(), base + 8 + 12);
  u.withdrawn.push_back(9);
  EXPECT_EQ(u.sizeBytes(), base + 8 + 12 + 4);
}

TEST(Messages, BgpUpdateDescribeShowsPathAndWithdrawal) {
  BgpUpdate u;
  u.advertised.push_back(BgpRoute{5, {1, 2, 5}});
  u.withdrawn.push_back(9);
  const auto text = u.describe();
  EXPECT_NE(text.find("adv=1"), std::string::npos);
  EXPECT_NE(text.find("5:[1 2 5]"), std::string::npos);
  EXPECT_NE(text.find("-9"), std::string::npos);
}

TEST(Messages, LsaSizeTracksNeighborCount) {
  Lsa lsa;
  const auto base = lsa.sizeBytes();
  lsa.neighbors = {1, 2, 3};
  EXPECT_EQ(lsa.sizeBytes(), base + 36);
}

TEST(Messages, TransportSegmentWrapsInnerSize) {
  auto inner = std::make_shared<BgpUpdate>();
  inner->advertised.push_back(BgpRoute{5, {1, 5}});
  TransportSegment seg;
  seg.inner = inner;
  EXPECT_EQ(seg.sizeBytes(), 20u + inner->sizeBytes());
  TransportSegment ack;
  ack.isAck = true;
  EXPECT_EQ(ack.sizeBytes(), 20u);
  EXPECT_NE(ack.describe().find("ack"), std::string::npos);
}

}  // namespace
}  // namespace rcsim
