// The routing-state engine (docs/routing-state.md): dense SoA containers,
// the multi-next-hop FIB, and the incremental SPF. Three layers of proof:
// unit tests on the containers, shape tests on ECMP route installation,
// and whole-run digests pinning that none of it changed simulation
// behavior with ecmp off.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/fingerprint.hpp"
#include "core/options.hpp"
#include "net/dense.hpp"
#include "net/fib.hpp"
#include "routing/linkstate.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "topo/graph_algo.hpp"
#include "topo/topology.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

TEST(RoutingState, DenseNodeMapIsFlatNodeKeyedStorage) {
  DenseNodeMap<int> m;
  m.assign(5, -1);
  ASSERT_EQ(m.size(), 5u);
  m[3] = 42;
  EXPECT_EQ(m[3], 42);
  EXPECT_EQ(m[0], -1);
  int sum = 0;
  for (const int v : m) sum += v;
  EXPECT_EQ(sum, 42 - 4);
}

TEST(RoutingState, NodeBitsetDrainsAscendingLikeTheSetItReplaces) {
  NodeBitset s;
  s.assign(130);
  EXPECT_TRUE(s.empty());
  // Insert out of order, across word boundaries.
  for (const NodeId id : {64, 3, 129, 7, 63}) EXPECT_TRUE(s.set(id));
  EXPECT_FALSE(s.set(7));  // already present
  EXPECT_EQ(s.count(), 5u);
  EXPECT_TRUE(s.test(129));
  EXPECT_FALSE(s.test(128));
  EXPECT_TRUE(s.reset(64));
  EXPECT_FALSE(s.reset(64));  // absent now
  std::vector<NodeId> out;
  s.drainSorted(out);
  EXPECT_EQ(out, (std::vector<NodeId>{3, 7, 63, 129}));
  EXPECT_TRUE(s.empty());  // drain clears
}

TEST(RoutingState, NeighborIndexIteratesAscendingById) {
  NeighborIndex idx;
  // Attachment order 5, 2, 9 — slots follow attachment, iteration follows id.
  idx.add(5, 0);
  idx.add(2, 1);
  idx.add(9, 2);
  EXPECT_EQ(idx.slotOf(5), 0);
  EXPECT_EQ(idx.slotOf(2), 1);
  EXPECT_EQ(idx.slotOf(4), -1);
  std::vector<NodeId> ids;
  std::vector<int> slots;
  idx.forEachSorted([&](NodeId id, int slot) {
    ids.push_back(id);
    slots.push_back(slot);
  });
  EXPECT_EQ(ids, (std::vector<NodeId>{2, 5, 9}));
  EXPECT_EQ(slots, (std::vector<int>{1, 0, 2}));
}

TEST(RoutingState, FibSetThrowsOnOutOfRangeDestination) {
  Fib fib;
  fib.resize(4);
  EXPECT_THROW(fib.set(4, 1), std::out_of_range);
  EXPECT_THROW(fib.set(kInvalidNode, 1), std::out_of_range);
  NodeId hops[] = {1};
  EXPECT_THROW(fib.setMulti(7, hops, 1), std::out_of_range);
  EXPECT_NO_THROW(fib.set(3, 1));
}

TEST(RoutingState, FibMultiNextHopSemantics) {
  Fib fib;
  fib.resize(8, /*ecmp=*/true);
  const NodeId hops[] = {2, 3, 5};
  fib.setMulti(1, hops, 3);
  EXPECT_EQ(fib.nextHop(1), 2);  // entry 0 is the primary
  NodeId out[Fib::kMaxNextHops];
  ASSERT_EQ(fib.nextHops(1, out), 3);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 5);
  // pick() spreads flow keys over the entry set and is key-deterministic.
  for (std::uint64_t k = 0; k < 6; ++k) {
    const NodeId nh = fib.pick(1, k);
    EXPECT_TRUE(nh == 2 || nh == 3 || nh == 5);
    EXPECT_EQ(nh, fib.pick(1, k));
  }
  EXPECT_EQ(fib.pick(1, 0), 2);  // key % 3 == 0 -> primary
  EXPECT_EQ(fib.pick(1, 1), 3);
  EXPECT_EQ(fib.pick(1, 2), 5);
  // Single-hop set() drops the alternates.
  fib.set(1, 7);
  ASSERT_EQ(fib.nextHops(1, out), 1);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(fib.pick(1, 1), 7);
}

TEST(RoutingState, FibWithoutEcmpKeepsOnlyThePrimary) {
  Fib fib;
  fib.resize(4);  // ecmp off: alternate arrays never allocated
  const NodeId hops[] = {2, 3};
  fib.setMulti(1, hops, 2);
  NodeId out[Fib::kMaxNextHops];
  ASSERT_EQ(fib.nextHops(1, out), 1);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(fib.pick(1, 12345), 2);
}

TEST(RoutingState, FlowKeyIsAStableFunctionOfTheFlow) {
  EXPECT_EQ(fibFlowKey(3, 9), fibFlowKey(3, 9));
  EXPECT_NE(fibFlowKey(3, 9), fibFlowKey(9, 3));
  EXPECT_NE(fibFlowKey(3, 9), fibFlowKey(3, 10));
}

// A square 0-1-3 / 0-2-3: two equal-cost two-hop paths from 0 to 3. With
// ECMP enabled the distance-vector protocols must install both first hops.
Topology diamondTopology() {
  Topology t;
  t.nodeCount = 4;
  t.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  return t;
}

TEST(RoutingState, DbfInstallsEqualCostAlternatesWhenEcmpOn) {
  TestNet tn{diamondTopology(), ProtocolKind::Dbf, {}, {}, /*seed=*/1, /*ecmp=*/true};
  tn.warmUp(60_sec);
  NodeId out[Fib::kMaxNextHops];
  const int count = tn.node(0).fib().nextHops(3, out);
  ASSERT_EQ(count, 2);
  std::sort(out, out + 2);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(RoutingState, DualInstallsEqualCostAlternatesWhenEcmpOn) {
  TestNet tn{diamondTopology(), ProtocolKind::Dual, {}, {}, /*seed=*/1, /*ecmp=*/true};
  tn.warmUp(60_sec);
  NodeId out[Fib::kMaxNextHops];
  const int count = tn.node(0).fib().nextHops(3, out);
  ASSERT_EQ(count, 2);
  std::sort(out, out + 2);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

// Whole-scenario smoke under the runtime invariant checker: an ECMP run
// must deliver traffic with every installed entry (primaries *and*
// alternates — finalCheck sweeps the full set) pointing at live neighbors.
TEST(RoutingState, EcmpScenarioDeliversUnderInvariantChecker) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Dbf;
  cfg.mesh.degree = 4;
  cfg.seed = 3;
  cfg.ecmp = true;
  cfg.checkInvariants = true;  // violations make run() throw
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.data.delivered, 0u);
}

// Digest neutrality: with ecmp off (the default, spelled explicitly here
// through the option layer), the refactored routing-state engine must
// reproduce the PR-1 golden digest bit for bit. The full 20-digest golden
// sweep lives in test_perf_gate.cpp; this pins one of them through the
// options round trip that artifact replay uses.
TEST(RoutingState, EcmpOffReproducesGoldenDigestThroughOptionLayer) {
  ScenarioConfig cfg;
  applyOption(cfg, "protocol", "RIP");
  applyOption(cfg, "degree", "4");
  applyOption(cfg, "seed", "1");
  applyOption(cfg, "ecmp", "0");
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(runResultDigest(r), "778e0e455546c13d");
}

// The incremental SPF's correctness proof: with the oracle on, every SPF
// outcome (skip, incremental, full) is compared element-wise — dist,
// parent, first hop, per destination — against a from-scratch BFS, and any
// mismatch throws. Drive it through randomized fail/recover sequences on a
// mesh and require that the incremental path actually ran.
TEST(Spf, IncrementalMatchesFullOracleAcrossRandomFaultSequences) {
  const auto topo = makeRegularMesh(MeshSpec{4, 4, 4});
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ProtocolConfig cfg;
    cfg.ls.spfOracle = true;
    TestNet tn{topo, ProtocolKind::LinkState, cfg, {}, seed};
    tn.warmUp(30_sec);
    Rng rng{seed * 1000 + 7};
    Time now = 30_sec;
    for (int round = 0; round < 6; ++round) {
      const auto& [a, b] =
          topo.edges[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(topo.edges.size()) - 1))];
      auto* link = tn.net().findLink(a, b);
      ASSERT_NE(link, nullptr);
      link->fail();
      now = now + 20_sec;
      tn.runUntil(now);
      link->recover();
      now = now + 20_sec;
      tn.runUntil(now);
    }
    std::uint64_t incrementals = 0;
    std::uint64_t runs = 0;
    for (NodeId n = 0; n < topo.nodeCount; ++n) {
      const auto& ls = tn.protocolAs<LinkState>(n);
      incrementals += ls.spfIncrementals();
      runs += ls.spfRuns();
    }
    EXPECT_GT(runs, 0u) << "seed " << seed;
    EXPECT_GT(incrementals, 0u) << "seed " << seed << ": incremental path never exercised";
  }
}

// The skip fast path: a periodic LSA refresh that changes nothing in the
// LSDB must not trigger a recompute (the oracle above also verifies the
// *skipped* state stays equal to a fresh BFS).
TEST(Spf, RefreshWithoutTopologyChangeSkipsRecompute) {
  ProtocolConfig cfg;
  cfg.ls.spfOracle = true;
  TestNet tn{testutil::ringTopology(6), ProtocolKind::LinkState, cfg};
  tn.warmUp(120_sec);  // several refresh intervals
  std::uint64_t skips = 0;
  for (NodeId n = 0; n < 6; ++n) skips += tn.protocolAs<LinkState>(n).spfSkips();
  EXPECT_GT(skips, 0u);
}

}  // namespace
}  // namespace rcsim
