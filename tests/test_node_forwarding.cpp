#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

/// Three nodes in a line: a - m - b, manual FIBs, no routing protocol.
struct ForwardingFixture : ::testing::Test {
  ForwardingFixture() : net{sched, Rng{3}} {
    a = net.addNode();
    m = net.addNode();
    b = net.addNode();
    net.addLink(a, m, cfg);
    net.addLink(m, b, cfg);
    net.finalize();
    net.node(a).setRoute(b, m);
    net.node(m).setRoute(b, b);
    net.node(m).setRoute(a, a);
    net.node(b).setRoute(a, m);

    net.hooks().onDeliver = [this](Time t, NodeId n, const Packet& p) {
      delivered.push_back(p);
      deliveredAt.push_back(t);
      deliveredNode.push_back(n);
    };
    net.hooks().onDrop = [this](Time, NodeId n, const Packet&, DropReason r) {
      drops.emplace_back(n, r);
    };
    net.hooks().onForward = [this](Time, NodeId n, const Packet&, NodeId nh) {
      forwards.emplace_back(n, nh);
    };
  }

  Packet makePacket(NodeId src, NodeId dst, int ttl = 64) {
    Packet p;
    p.id = net.nextPacketId();
    p.src = src;
    p.dst = dst;
    p.ttl = ttl;
    p.sizeBytes = 1000;
    p.kind = PacketKind::Data;
    p.sendTime = sched.now();
    p.trace = std::make_shared<std::vector<NodeId>>();
    return p;
  }

  Scheduler sched;
  LinkConfig cfg;
  Network net;
  NodeId a{}, m{}, b{};
  std::vector<Packet> delivered;
  std::vector<Time> deliveredAt;
  std::vector<NodeId> deliveredNode;
  std::vector<std::pair<NodeId, DropReason>> drops;
  std::vector<std::pair<NodeId, NodeId>> forwards;
};

TEST_F(ForwardingFixture, EndToEndDelivery) {
  net.node(a).originate(makePacket(a, b));
  sched.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(deliveredNode[0], b);
  ASSERT_EQ(forwards.size(), 2u);
  EXPECT_EQ(forwards[0], std::make_pair(a, m));
  EXPECT_EQ(forwards[1], std::make_pair(m, b));
}

TEST_F(ForwardingFixture, TraceRecordsVisitedNodes) {
  net.node(a).originate(makePacket(a, b));
  sched.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(*delivered[0].trace, (std::vector<NodeId>{a, m, b}));
}

TEST_F(ForwardingFixture, TtlDecrementedPerTransitHop) {
  net.node(a).originate(makePacket(a, b, 64));
  sched.run();
  ASSERT_EQ(delivered.size(), 1u);
  // Decremented at m only (origination and delivery don't decrement).
  EXPECT_EQ(delivered[0].ttl, 63);
}

TEST_F(ForwardingFixture, TtlExpiryDropsAtTransit) {
  net.node(a).originate(makePacket(a, b, 1));
  sched.run();
  EXPECT_TRUE(delivered.empty());
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], std::make_pair(m, DropReason::TtlExpired));
}

TEST_F(ForwardingFixture, NoRouteDropsAtBlackholeNode) {
  net.node(m).setRoute(b, kInvalidNode);
  net.node(a).originate(makePacket(a, b));
  sched.run();
  EXPECT_TRUE(delivered.empty());
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], std::make_pair(m, DropReason::NoRoute));
}

TEST_F(ForwardingFixture, NoRouteAtOriginDropsImmediately) {
  net.node(a).setRoute(b, kInvalidNode);
  net.node(a).originate(makePacket(a, b));
  sched.run();
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], std::make_pair(a, DropReason::NoRoute));
}

TEST_F(ForwardingFixture, DeliveryToSelf) {
  net.node(a).originate(makePacket(a, a));
  sched.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(deliveredNode[0], a);
  EXPECT_TRUE(forwards.empty());
}

TEST_F(ForwardingFixture, TwoNodeForwardingLoopExpiresTtl) {
  // Misconfigure: a and m point at each other for dst b.
  net.node(m).setRoute(b, a);
  net.node(a).originate(makePacket(a, b, 10));
  sched.run();
  EXPECT_TRUE(delivered.empty());
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].second, DropReason::TtlExpired);
}

TEST_F(ForwardingFixture, RouteChangeHookFires) {
  std::vector<std::tuple<NodeId, NodeId, NodeId, NodeId>> changes;
  net.hooks().onRouteChange = [&](Time, NodeId n, NodeId dst, NodeId oldNh, NodeId newNh) {
    changes.emplace_back(n, dst, oldNh, newNh);
  };
  net.node(a).setRoute(b, m);  // unchanged: no event
  EXPECT_TRUE(changes.empty());
  net.node(a).setRoute(b, kInvalidNode);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0], std::make_tuple(a, b, m, kInvalidNode));
}

TEST_F(ForwardingFixture, FibWalkReportsPathLoopAndBlackhole) {
  bool loop = false, blackhole = false;
  auto path = net.fibWalk(a, b, &loop, &blackhole);
  EXPECT_EQ(path, (std::vector<NodeId>{a, m, b}));
  EXPECT_FALSE(loop);
  EXPECT_FALSE(blackhole);

  net.node(m).setRoute(b, kInvalidNode);
  path = net.fibWalk(a, b, &loop, &blackhole);
  EXPECT_TRUE(blackhole);
  EXPECT_EQ(path, (std::vector<NodeId>{a, m}));

  net.node(m).setRoute(b, a);
  path = net.fibWalk(a, b, &loop, &blackhole);
  EXPECT_TRUE(loop);
}

TEST_F(ForwardingFixture, ShortestPathLiveRespectsLinkState) {
  EXPECT_EQ(net.shortestDistLive(a, b), 2);
  net.findLink(m, b)->fail();
  EXPECT_EQ(net.shortestDistLive(a, b), -1);
  EXPECT_TRUE(net.shortestPathLive(a, b).empty());
}

TEST_F(ForwardingFixture, ControlPacketGoesToProtocolNotFib) {
  // A node with no protocol silently consumes control payloads.
  struct Dummy final : ControlPayload {
    std::uint32_t sizeBytes() const override { return 8; }
    std::string describe() const override { return "dummy"; }
  };
  net.node(a).sendControl(m, std::make_shared<Dummy>());
  sched.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_TRUE(drops.empty());
}

}  // namespace
}  // namespace rcsim
