// Focused tests on the DV machinery shared by RIP and DBF: the RFC 2453
// triggered-update engine (first update immediate + batched, then damped),
// periodic cadence, and split-horizon poisoning on the wire.
#include <gtest/gtest.h>

#include "routing/messages.hpp"
#include "test_util.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

struct Capture {
  Time t;
  NodeId from;
  NodeId to;
  std::vector<DvEntry> entries;
};

class DvEngine : public ::testing::Test {
 protected:
  void install(TestNet& tn) {
    tn.net().hooks().onControlSend = [this](Time t, NodeId from, NodeId to,
                                            const ControlPayload& payload) {
      if (const auto* u = dynamic_cast<const DvUpdate*>(&payload)) {
        captured_.push_back(Capture{t, from, to, u->entries});
      }
    };
  }

  std::vector<Capture> captured_;
};

TEST_F(DvEngine, FailurePoisonRidesOneImmediateBatchedUpdate) {
  // Line 0-1-2-3-4; fail 3-4 and watch what node 3 sends to node 2: the
  // *first* post-detection update must carry the poisoned route(s) at once
  // (not one destination now and the rest a damping interval later).
  TestNet tn{testutil::lineTopology(5), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  install(tn);
  tn.net().findLink(3, 4)->fail();
  tn.runUntil(40_sec + 300_ms);  // detection at +50 ms; damping floor is 1 s
  bool sawPoison = false;
  for (const auto& c : captured_) {
    if (c.from != 3 || c.to != 2) continue;
    for (const auto& e : c.entries) {
      if (e.dst == 4 && e.metric == 16) sawPoison = true;
    }
  }
  EXPECT_TRUE(sawPoison);
}

TEST_F(DvEngine, TriggeredUpdatesAreDamped) {
  // After the first triggered update, follow-ups from the same node to the
  // same neighbor must be spaced by at least the damping floor (1 s),
  // except for the periodic announcement (which carries the full table and
  // is allowed any time).
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  install(tn);
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(80_sec);
  // Collect node 1 -> node 0 update timestamps carrying a *change* for 3.
  std::vector<Time> times;
  for (const auto& c : captured_) {
    if (c.from == 1 && c.to == 0) times.push_back(c.t);
  }
  ASSERT_GE(times.size(), 1u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = (times[i] - times[i - 1]).toSeconds();
    EXPECT_GE(gap, 0.99) << "updates " << i - 1 << " and " << i;
  }
}

TEST_F(DvEngine, PeriodicFullTableCadence) {
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip};
  tn.warmUp(10_sec);
  install(tn);
  tn.runUntil(190_sec);  // 180 s of steady state
  // Full-table announcements from 1 to 0: one initial phase + every ~30 s.
  int fullTables = 0;
  for (const auto& c : captured_) {
    if (c.from == 1 && c.to == 0 && c.entries.size() == 3) ++fullTables;
  }
  EXPECT_GE(fullTables, 4);
  EXPECT_LE(fullTables, 8);
}

TEST_F(DvEngine, PoisonReverseOnTheWire) {
  // Poison applies when the update's receiver equals the route's next hop:
  // node 1 reaches dst 2 via 2 itself, so updates 1->2 must carry dst 2 at
  // metric 16, while updates 1->0 advertise the honest metric 1.
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  install(tn);
  tn.runUntil(80_sec);
  bool poisonedTowardNextHop = false;
  bool honestAwayFromNextHop = false;
  for (const auto& c : captured_) {
    for (const auto& e : c.entries) {
      if (e.dst != 2) continue;
      if (c.from == 1 && c.to == 2 && e.metric == 16) poisonedTowardNextHop = true;
      if (c.from == 1 && c.to == 0 && e.metric == 1) honestAwayFromNextHop = true;
    }
  }
  EXPECT_TRUE(poisonedTowardNextHop);
  EXPECT_TRUE(honestAwayFromNextHop);
}

TEST_F(DvEngine, NoPoisonReverseModeAdvertisesHonestly) {
  ProtocolConfig cfg;
  cfg.dv.splitHorizon = SplitHorizonMode::None;
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip, cfg};
  tn.warmUp(40_sec);
  install(tn);
  tn.runUntil(80_sec);
  bool sawHonestTowardNextHop = false;
  for (const auto& c : captured_) {
    for (const auto& e : c.entries) {
      if (e.dst == 2 && c.from == 1 && c.to == 2 && e.metric == 1) sawHonestTowardNextHop = true;
    }
  }
  EXPECT_TRUE(sawHonestTowardNextHop);
}

TEST_F(DvEngine, LargeInfinityMetricSurvivesTheWire) {
  // Regression: DvEntry::metric used to be uint8_t, so an infinity of 300
  // truncated to 44 on the wire — an unreachable destination advertised as
  // a *great* route, resurrecting dead paths. The full metric must arrive
  // intact and the route must actually die.
  ProtocolConfig cfg;
  cfg.dv.infinityMetric = 300;
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip, cfg};
  tn.warmUp(40_sec);
  install(tn);
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(50_sec);
  bool sawFullInfinity = false;
  for (const auto& c : captured_) {
    if (c.from != 1 || c.to != 0) continue;
    for (const auto& e : c.entries) {
      EXPECT_NE(e.metric, 44) << "metric truncated to 8 bits on the wire";
      if (e.dst == 2 && e.metric == 300) sawFullInfinity = true;
    }
  }
  EXPECT_TRUE(sawFullInfinity);
  EXPECT_EQ(tn.nextHop(0, 2), kInvalidNode);
}

TEST_F(DvEngine, ZeroDampingPropagatesChangesBackToBack) {
  ProtocolConfig cfg;
  cfg.dv.triggerDampMinSec = 0.0;
  cfg.dv.triggerDampMaxSec = 0.0;
  TestNet tn{testutil::ringTopology(8), ProtocolKind::Dbf, cfg};
  tn.warmUp(40_sec);
  tn.net().findLink(0, 7)->fail();
  // Without damping the whole counting-to-next-best settles in link-time.
  tn.runUntil(41_sec);
  EXPECT_EQ(tn.nextHop(0, 7), 1);
}

}  // namespace
}  // namespace rcsim
