#include "routing/linkstate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

TEST(LinkState, ConvergesOnLine) {
  TestNet tn{testutil::lineTopology(5), ProtocolKind::LinkState};
  tn.warmUp(5_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  EXPECT_EQ(tn.nextHop(4, 0), 3);
}

TEST(LinkState, ConvergesFastOnMesh) {
  // Flooding plus SPF converges in link-latency time, not timer time.
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::LinkState};
  tn.warmUp(2_sec);
  const auto dist = bfsDistances(topo, gridId(0, 0, 5));
  for (NodeId d = 1; d < topo.nodeCount; ++d) {
    bool loop = false, blackhole = false;
    const auto path = tn.net().fibWalk(gridId(0, 0, 5), d, &loop, &blackhole);
    EXPECT_FALSE(loop);
    EXPECT_FALSE(blackhole);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dist[static_cast<std::size_t>(d)]);
  }
}

TEST(LinkState, ReroutesAroundFailureQuickly) {
  TestNet tn{testutil::ringTopology(6), ProtocolKind::LinkState};
  tn.warmUp(5_sec);
  ASSERT_EQ(tn.nextHop(0, 5), 5);
  tn.net().findLink(0, 5)->fail();
  // Detection 50 ms + flood a few ms + SPF delay 10 ms.
  tn.runUntil(5_sec + 200_ms);
  EXPECT_EQ(tn.nextHop(0, 5), 1);
}

TEST(LinkState, PartitionAndHeal) {
  TestNet tn{testutil::lineTopology(4), ProtocolKind::LinkState};
  tn.warmUp(5_sec);
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(6_sec);
  EXPECT_EQ(tn.nextHop(0, 3), kInvalidNode);
  tn.net().findLink(1, 2)->recover();
  tn.runUntil(8_sec);
  EXPECT_EQ(tn.nextHop(0, 3), 1);
  EXPECT_EQ(tn.nextHop(1, 3), 2);
}

TEST(LinkState, BidirectionalCheckIgnoresHalfDeadEdges) {
  // A freshly joined node whose neighbor hasn't re-originated yet must not
  // be routed through. We approximate by checking steady state is loop-free
  // and complete even while refreshes are staggered.
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 6});
  TestNet tn{topo, ProtocolKind::LinkState};
  tn.warmUp(10_sec);
  for (NodeId s = 0; s < topo.nodeCount; s += 7) {
    for (NodeId d = 0; d < topo.nodeCount; d += 5) {
      if (s == d) continue;
      bool loop = false, blackhole = false;
      (void)tn.net().fibWalk(s, d, &loop, &blackhole);
      EXPECT_FALSE(loop);
      EXPECT_FALSE(blackhole);
    }
  }
}

TEST(LinkState, SpfRunsAreDamped) {
  TestNet tn{testutil::ringTopology(6), ProtocolKind::LinkState};
  tn.warmUp(5_sec);
  const auto runsBefore = tn.protocolAs<LinkState>(3).spfRuns();
  // A single failure floods one LSA pair; the SPF hold-down must coalesce
  // them into a bounded number of recomputations.
  tn.net().findLink(0, 5)->fail();
  tn.runUntil(6_sec);
  const auto runsAfter = tn.protocolAs<LinkState>(3).spfRuns();
  EXPECT_GE(runsAfter, runsBefore + 1);
  EXPECT_LE(runsAfter, runsBefore + 4);
}

}  // namespace
}  // namespace rcsim
