// Run-journal and resume/retry tests: CRC framing, exact RunResult JSON
// round-trip, torn-line tolerance, resume folding without re-execution,
// retry-with-backoff quarantine semantics, and graceful cancel drain.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/json_lite.hpp"
#include "exp/executor.hpp"
#include "exp/journal.hpp"
#include "exp/spec.hpp"

namespace rcsim::exp {
namespace {

/// Unique scratch directory removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "rcsim_journal_XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ScenarioConfig tinyConfig(int degree) {
  ScenarioConfig cfg;
  cfg.mesh.degree = degree;
  cfg.trafficStart = Time::seconds(80.0);
  cfg.failAt = Time::seconds(100.0);
  cfg.trafficStop = Time::seconds(140.0);
  cfg.endAt = Time::seconds(200.0);
  return cfg;
}

/// A deterministic synthetic RunResult with every field populated, so the
/// JSON round-trip is exercised without simulating.
RunResult syntheticResult(std::uint64_t seed) {
  RunResult r;
  r.protocol = ProtocolKind::Bgp3;
  r.degree = 4;
  r.seed = seed;
  r.sent = 1000 + seed;
  r.data.delivered = 900;
  r.data.forwarded = 5000;
  r.data.dropNoRoute = 50;
  r.data.dropTtl = 20;
  r.data.dropQueue = 10;
  r.data.dropLinkDown = 5;
  r.data.dropInFlightCut = 3;
  r.data.dropLoss = 7;
  r.data.dropCorrupt = 5;
  r.dataAfterFailure.dropNoRoute = 33;
  r.control.forwarded = 777;
  r.loopEscapedDeliveries = 4;
  r.controlMessages = 1234;
  r.controlBytes = 99999;
  r.controlMessagesAfterFailure = 321;
  r.tcpGoodputPackets = 17;
  r.tcpRetransmissions = 2;
  r.transportRetransmissions = 8;
  r.transportSessionResets = 1;
  r.routingConvergenceSec = 12.375 + static_cast<double>(seed) / 3.0;
  r.forwardingConvergenceSec = 0.1 + 1.0 / 7.0;
  r.transientPaths = 5;
  r.sawLoop = true;
  r.sawBlackhole = false;
  r.preFailurePathShortest = true;
  r.preFailurePathHops = 3;
  r.finalPathShortest = false;
  r.routeChangesAfterFailure = 11;
  r.throughput = {80.0, 79.5, 1.0 / 3.0, 0.0};
  r.meanDelay = {0.01, 0.0123456789012345678, 0.0};
  r.failSec = 100;
  r.eventsExecuted = 123456789;
  r.anatomy.episodes = 2;
  r.anatomy.triggers = 3;
  r.anatomy.detectedEpisodes = 2;
  r.anatomy.detectionSecTotal = 0.5 + 1.0 / 3.0;
  r.anatomy.convergedEpisodes = 1;
  r.anatomy.convergenceSecTotal = 2.25;
  r.anatomy.fibChurn = 19;
  r.anatomy.loopWindows = 1;
  r.anatomy.loopSeconds = 0.75;
  r.anatomy.blackholeWindows = 2;
  r.anatomy.blackholeSeconds = 1.0 / 7.0;
  r.anatomy.dropsLoop = 4;
  r.anatomy.dropsBlackhole = 6;
  r.anatomy.dropsTtl = 1;
  r.anatomy.dropsQueue = 2;
  r.anatomy.dropsOther = 1;
  r.anatomy.delivered = 500;
  r.anatomy.controlMessages = 321;
  r.anatomy.controlBytes = 65432;
  r.anatomy.helloMessages = 50;
  r.anatomy.helloBytes = 800;
  r.anatomy.dvTriggered = 9;
  r.anatomy.dvPeriodic = 30;
  r.anatomy.mraiArmed = 5;
  r.anatomy.mraiFired = 5;
  return r;
}

TEST(Journal, Crc32MatchesKnownVector) {
  // The classic CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32Hex("123456789"), "cbf43926");
  EXPECT_EQ(crc32Hex(""), "00000000");
}

TEST(Journal, RunResultJsonRoundTripsBitExactly) {
  const RunResult r = syntheticResult(42);
  const RunResult back = runResultFromJson(parseJson(dumpJsonLine(runResultToJson(r))));
  EXPECT_EQ(runResultFingerprint(back), runResultFingerprint(r));
  EXPECT_EQ(runResultDigest(back), runResultDigest(r));
  // The run digest deliberately excludes the anatomy block (the golden
  // digests predate it), so the convergence rollup needs its own check —
  // resumed journals must fold the same summaries as a fresh run.
  EXPECT_EQ(back.anatomy, r.anatomy);
  EXPECT_EQ(anatomyDigest(back.anatomy), anatomyDigest(r.anatomy));
}

TEST(Journal, EncodeDecodeLineRoundTrip) {
  JournalRecord rec;
  rec.experiment = "demo";
  rec.cell = "RIP/degree=3";
  rec.configDigest = "0123456789abcdef";
  rec.seed = 7;
  rec.attempt = 2;
  rec.ok = true;
  rec.result = syntheticResult(7);

  const std::string line = encodeJournalLine(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  JournalRecord back;
  ASSERT_TRUE(decodeJournalLine(line, back));
  EXPECT_EQ(back.experiment, "demo");
  EXPECT_EQ(back.cell, "RIP/degree=3");
  EXPECT_EQ(back.configDigest, "0123456789abcdef");
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.attempt, 2);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(runResultFingerprint(back.result), runResultFingerprint(rec.result));

  JournalRecord fail;
  fail.experiment = "demo";
  fail.cell = "RIP/degree=3";
  fail.configDigest = "0123456789abcdef";
  fail.seed = 9;
  fail.attempt = 2;
  fail.ok = false;
  fail.errors = {"watchdog: replica exceeded wall-clock budget of 1.0s", "boom"};
  ASSERT_TRUE(decodeJournalLine(encodeJournalLine(fail), back));
  EXPECT_FALSE(back.ok);
  ASSERT_EQ(back.errors.size(), 2u);
  EXPECT_EQ(back.errors[1], "boom");
}

TEST(Journal, DecodeRejectsCorruption) {
  JournalRecord rec;
  rec.experiment = "demo";
  rec.cell = "c";
  rec.seed = 1;
  rec.ok = true;
  rec.result = syntheticResult(1);
  std::string line = encodeJournalLine(rec);

  JournalRecord out;
  // Flip one byte in the middle of the payload: CRC must catch it.
  std::string tampered = line;
  const std::size_t mid = tampered.size() / 2;
  tampered[mid] = tampered[mid] == '0' ? '1' : '0';
  EXPECT_FALSE(decodeJournalLine(tampered, out));
  // A torn (truncated) line from a mid-write SIGKILL fails to parse.
  EXPECT_FALSE(decodeJournalLine(line.substr(0, line.size() / 2), out));
  EXPECT_FALSE(decodeJournalLine("not json at all", out));
  EXPECT_TRUE(decodeJournalLine(line, out));
}

TEST(Journal, WriterReaderRoundTripAndTornTailTolerance) {
  TempDir dir;
  {
    JournalWriter w{dir.path()};
    for (std::uint64_t s = 1; s <= 3; ++s) {
      JournalRecord rec;
      rec.experiment = "demo";
      rec.cell = "c";
      rec.configDigest = "deadbeefdeadbeef";
      rec.seed = s;
      rec.ok = s != 2;
      if (rec.ok) {
        rec.result = syntheticResult(s);
      } else {
        rec.errors = {"first boom", "second boom"};
      }
      w.append(rec);
    }
  }
  JournalReadStats stats;
  auto records = readJournal(dir.path(), &stats);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.corrupt, 0u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(records[1].ok);

  // Simulate a SIGKILL mid-append: an unterminated torn tail.
  {
    std::ofstream out{std::filesystem::path{dir.path()} / kJournalFileName,
                      std::ios::binary | std::ios::app};
    out << "{\"crc\":\"00000000\",\"rec\":{\"truncated";
  }
  records = readJournal(dir.path(), &stats);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.corrupt, 1u);

  // Reopening the writer repairs the torn tail so the next append starts
  // on a fresh line and is NOT merged into the garbage.
  {
    JournalWriter w{dir.path()};
    JournalRecord rec;
    rec.experiment = "demo";
    rec.cell = "c";
    rec.configDigest = "deadbeefdeadbeef";
    rec.seed = 4;
    rec.ok = true;
    rec.result = syntheticResult(4);
    w.append(rec);
  }
  records = readJournal(dir.path(), &stats);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.corrupt, 1u);

  // A missing journal is an empty journal, not an error.
  EXPECT_TRUE(readJournal(dir.path() + "/no_such_subdir", &stats).empty());
  EXPECT_EQ(stats.records, 0u);
}

TEST(Journal, IndexLaterRecordWinsAndConfigIsPartOfTheKey) {
  JournalRecord rec;
  rec.experiment = "demo";
  rec.cell = "c";
  rec.configDigest = "aaaa";
  rec.seed = 5;
  rec.ok = true;
  rec.result = syntheticResult(5);

  JournalIndex idx;
  idx.add(rec);
  rec.result.sent = 777;  // a re-run of the same replica: later wins
  idx.add(rec);
  ASSERT_NE(idx.find("demo", "c", "aaaa", 5), nullptr);
  EXPECT_EQ(idx.find("demo", "c", "aaaa", 5)->sent, 777u);
  EXPECT_EQ(idx.find("demo", "c", "bbbb", 5), nullptr);  // changed config: no hit
  EXPECT_EQ(idx.find("demo", "c", "aaaa", 6), nullptr);

  rec.ok = false;  // quarantined replicas are not indexed — resume re-runs them
  rec.seed = 6;
  idx.add(rec);
  EXPECT_EQ(idx.find("demo", "c", "aaaa", 6), nullptr);
}

TEST(Journal, ResumeFoldsJournaledReplicasWithoutRerunning) {
  TempDir dir;
  auto executions = std::make_shared<std::atomic<int>>(0);

  ExperimentSpec spec;
  spec.name = "resume_demo";
  for (const int degree : {3, 4}) {
    CellSpec cell;
    cell.id = "synthetic/degree=" + std::to_string(degree);
    cell.config = tinyConfig(degree);
    cell.run = [executions](const ScenarioConfig& cfg) {
      executions->fetch_add(1);
      return syntheticResult(cfg.seed);
    };
    spec.cells.push_back(std::move(cell));
  }

  ExperimentResult first;
  {
    JournalWriter journal{dir.path()};
    JobOptions opts;
    opts.journal = &journal;
    SweepExecutor executor{2};
    first = executor.finish(executor.submit(spec, 3, opts));
  }
  EXPECT_EQ(executions->load(), 6);
  ASSERT_EQ(first.cells.size(), 2u);

  // Resume from the journal: every replica folds from disk, nothing runs,
  // and the aggregates are bit-identical.
  const JournalIndex index = JournalIndex::load(dir.path());
  EXPECT_EQ(index.size(), 6u);
  JobOptions opts;
  opts.resume = &index;
  SweepExecutor executor{2};
  const ExperimentResult resumed = executor.finish(executor.submit(spec, 3, opts));
  EXPECT_EQ(executions->load(), 6) << "resume must not re-run journaled replicas";
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    EXPECT_EQ(aggregateDigest(resumed.cells[c].agg), aggregateDigest(first.cells[c].agg));
    EXPECT_EQ(resumed.cells[c].totals.sent, first.cells[c].totals.sent);
  }

  // Partial journals resume too: a fresh experiment name misses the index
  // entirely and re-runs everything.
  ExperimentSpec other = spec;
  other.name = "resume_demo_other";
  const ExperimentResult rerun = executor.finish(executor.submit(other, 3, opts));
  EXPECT_EQ(executions->load(), 12);
  EXPECT_EQ(aggregateDigest(rerun.cells[0].agg), aggregateDigest(first.cells[0].agg));
}

TEST(Journal, RetryThenSuccessFoldsIdenticallyToFirstTrySuccess) {
  // Every replica fails its first attempt, succeeds on the retry.
  auto attempts = std::make_shared<std::array<std::atomic<int>, 16>>();

  ExperimentSpec flaky;
  flaky.name = "flaky";
  CellSpec cell;
  cell.id = "c";
  cell.config = tinyConfig(3);
  cell.run = [attempts](const ScenarioConfig& cfg) {
    if ((*attempts)[cfg.seed % 16].fetch_add(1) == 0) {
      throw std::runtime_error("transient failure on seed " + std::to_string(cfg.seed));
    }
    return syntheticResult(cfg.seed);
  };
  flaky.cells.push_back(cell);

  ExperimentSpec clean = flaky;
  clean.name = "clean";
  clean.cells[0].run = [](const ScenarioConfig& cfg) { return syntheticResult(cfg.seed); };

  SweepExecutor executor{2};
  JobOptions opts;
  opts.retry.maxAttempts = 2;
  opts.retry.backoffBaseSec = 0.001;  // keep the test fast
  const ExperimentResult flakyRes = executor.finish(executor.submit(flaky, 3, opts));
  const ExperimentResult cleanRes = executor.finish(executor.submit(clean, 3, opts));

  ASSERT_FALSE(flakyRes.cells[0].failed());
  EXPECT_EQ(aggregateDigest(flakyRes.cells[0].agg), aggregateDigest(cleanRes.cells[0].agg));
  // The error trail of the failed first attempts is preserved.
  ASSERT_EQ(flakyRes.cells[0].retries.size(), 3u);
  EXPECT_EQ(flakyRes.cells[0].retries[0].attempts.size(), 1u);
  EXPECT_NE(flakyRes.cells[0].retries[0].attempts[0].find("transient failure"),
            std::string::npos);
  EXPECT_TRUE(cleanRes.cells[0].retries.empty());
}

TEST(Journal, QuarantineAfterMaxAttemptsKeepsPerAttemptTrail) {
  ExperimentSpec spec;
  spec.name = "always_fails";
  CellSpec cell;
  cell.id = "c";
  cell.config = tinyConfig(3);
  cell.run = [](const ScenarioConfig& cfg) -> RunResult {
    throw std::runtime_error("boom seed " + std::to_string(cfg.seed));
  };
  spec.cells.push_back(std::move(cell));

  SweepExecutor executor{2};
  JobOptions opts;
  opts.retry.maxAttempts = 3;
  opts.retry.backoffBaseSec = 0.001;
  const ExperimentResult res = executor.finish(executor.submit(spec, 2, opts));
  ASSERT_TRUE(res.cells[0].failed());
  ASSERT_EQ(res.cells[0].failures.size(), 2u);
  for (const auto& f : res.cells[0].failures) {
    EXPECT_EQ(f.attempts.size(), 3u) << "every attempt's error is kept";
    EXPECT_EQ(f.error, f.attempts.back());
    EXPECT_NE(f.error.find("boom seed " + std::to_string(f.seed)), std::string::npos);
  }
}

TEST(Journal, CancelStopsClaimingAndDrainsInFlight) {
  auto executions = std::make_shared<std::atomic<int>>(0);

  ExperimentSpec spec;
  spec.name = "cancel_demo";
  CellSpec cell;
  cell.id = "slow";
  cell.config = tinyConfig(3);
  cell.run = [executions](const ScenarioConfig& cfg) {
    executions->fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return syntheticResult(cfg.seed);
  };
  spec.cells.push_back(std::move(cell));

  SweepExecutor executor{2};
  auto job = executor.submit(spec, 64);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  executor.requestCancel();
  const ExperimentResult res = executor.finish(job);  // must not hang
  const int ran = executions->load();
  EXPECT_GT(ran, 0);
  EXPECT_LT(ran, 64) << "cancel should stop new claims well before the sweep completes";
  EXPECT_EQ(res.runs, 64);

  // A submit after cancel finishes immediately without running anything.
  const int before = executions->load();
  (void)executor.finish(executor.submit(spec, 4));
  EXPECT_EQ(executions->load(), before);
}

}  // namespace
}  // namespace rcsim::exp
