#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/options.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"

namespace rcsim::fuzz {
namespace {

/// A tiny, fast, known-clean scenario for harness tests.
ScenarioConfig tinyConfig() {
  ScenarioConfig cfg;
  cfg.mesh = MeshSpec{3, 3, 4};
  cfg.injectFailure = false;
  cfg.trafficStart = Time::seconds(5.0);
  cfg.trafficStop = Time::seconds(15.0);
  cfg.endAt = Time::seconds(25.0);
  cfg.faultPlan = fault::FaultPlan::parse("8:fail:0-1;14:recover:0-1");
  return cfg;
}

TEST(FuzzHarness, CleanRunProducesDigests) {
  const RunOutcome out = runScenarioOnce(tinyConfig(), 30.0);
  EXPECT_EQ(out.status, RunStatus::Clean);
  EXPECT_FALSE(out.resultDigest.empty());
  EXPECT_FALSE(out.traceDigest.empty());
  EXPECT_FALSE(out.trace.empty());
  EXPECT_GT(out.eventsExecuted, 0u);
  EXPECT_EQ(findingKey(out), "clean");
}

TEST(FuzzHarness, RunStatusNamesRoundTrip) {
  // The banked-reproducer '# expect:' line stores these names; every
  // enumerator (including anatomy-divergence) must survive the round trip.
  for (const RunStatus s :
       {RunStatus::Clean, RunStatus::InvariantViolation, RunStatus::Exception, RunStatus::Timeout,
        RunStatus::Nondeterministic, RunStatus::AnatomyDivergence}) {
    EXPECT_EQ(runStatusFromString(toString(s)), s);
  }
  EXPECT_STREQ(toString(RunStatus::AnatomyDivergence), "anatomy-divergence");
  EXPECT_THROW((void)runStatusFromString("anatomy"), std::invalid_argument);
}

TEST(FuzzHarness, SameConfigSameDigests) {
  const RunOutcome a = runScenarioOnce(tinyConfig(), 30.0);
  const RunOutcome b = runScenarioOnce(tinyConfig(), 30.0);
  EXPECT_EQ(a.traceDigest, b.traceDigest);
  EXPECT_EQ(a.resultDigest, b.resultDigest);
  const RunOutcome checked = checkDeterminism(tinyConfig(), 30.0);
  EXPECT_EQ(checked.status, RunStatus::Clean);
}

TEST(FuzzHarness, WatchdogTimeoutIsClassified) {
  ScenarioConfig cfg = tinyConfig();
  cfg.endAt = Time::seconds(100000.0);  // far more work than the budget allows
  cfg.protoCfg.dv.periodicInterval = Time::seconds(1.0);
  const RunOutcome out = runScenarioOnce(cfg, 1e-6);
  EXPECT_EQ(out.status, RunStatus::Timeout);
}

TEST(FuzzHarness, DanglingPlanLinkClassifiesAsException) {
  ScenarioConfig cfg = tinyConfig();
  // 0-8 is not an edge of the 3x3 grid; the injector throws at t=8.
  cfg.faultPlan = fault::FaultPlan::parse("8:fail:0-8");
  const RunOutcome out = runScenarioOnce(cfg, 30.0);
  EXPECT_EQ(out.status, RunStatus::Exception);
  EXPECT_NE(out.detail.find("no link"), std::string::npos);
  EXPECT_EQ(findingKey(out), "exception/fault-plan: no link ");
}

TEST(FuzzHarness, ConstructFailureIsCaught) {
  ScenarioConfig cfg = tinyConfig();
  cfg.topology = TopologyKind::Inline;
  cfg.inlineTopo.nodes = 1;  // too small for a flow
  const RunOutcome out = runScenarioOnce(cfg, 30.0);
  EXPECT_EQ(out.status, RunStatus::Exception);
  EXPECT_NE(out.detail.find("construct:"), std::string::npos);
}

TEST(FuzzGenerator, ThirtySeedsConstructAndReferenceRealEdges) {
  Rng rng{2024};
  for (int i = 0; i < 30; ++i) {
    const ScenarioConfig cfg = generateScenario(rng);
    const Topology topo = scenarioTopology(cfg);
    EXPECT_GE(topo.nodeCount, 2);
    for (const auto& ev : cfg.faultPlan.events) {
      const bool namedLink =
          ev.kind == fault::FaultKind::LinkFail || ev.kind == fault::FaultKind::LinkRecover ||
          ev.kind == fault::FaultKind::DetectDelay ||
          ((ev.kind == fault::FaultKind::LinkLoss ||
            ev.kind == fault::FaultKind::LinkCorrupt ||
            ev.kind == fault::FaultKind::LinkReorder) &&
           !ev.allLinks);
      if (namedLink) {
        EXPECT_TRUE(topo.hasEdge(ev.a, ev.b))
            << "seed round " << i << ": plan names missing link " << ev.a << "-" << ev.b;
      }
      for (const auto n : ev.group) EXPECT_LT(n, topo.nodeCount);
    }
    // Every generated scenario must survive the options round-trip, or
    // banked reproducers could drift from what actually ran.
    ScenarioConfig rebuilt;
    for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
    EXPECT_EQ(scenarioDigest(rebuilt), scenarioDigest(cfg));
  }
}

TEST(FuzzGenerator, SameSeedSameStream) {
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scenarioDigest(generateScenario(a)), scenarioDigest(generateScenario(b)));
  }
}

TEST(FuzzMutate, MutantsStayValid) {
  Rng rng{11};
  ScenarioConfig cfg = generateScenario(rng);
  for (int i = 0; i < 40; ++i) {
    cfg = mutateScenario(cfg, rng);
    const Topology topo = scenarioTopology(cfg);  // throws if invalid
    EXPECT_GE(topo.nodeCount, 2);
    ScenarioConfig rebuilt;
    for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
    EXPECT_EQ(scenarioDigest(rebuilt), scenarioDigest(cfg));
  }
}

TEST(FuzzCoverage, BigramFeaturesAreDeterministicAndBucketed) {
  const RunOutcome out = runScenarioOnce(tinyConfig(), 30.0);
  const auto a = runFeatures(out);
  const auto b = runFeatures(out);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (const auto f : a) EXPECT_LT(f, CoverageMap::kFeatureSpace);

  CoverageMap map;
  EXPECT_EQ(map.add(a), a.size());
  EXPECT_EQ(map.add(a), 0u);  // replay adds nothing
  EXPECT_EQ(map.size(), a.size());
}

TEST(FuzzCorpus, ScenarioFileRoundTrips) {
  ScenarioDoc doc;
  doc.config = tinyConfig();
  doc.expect = RunStatus::InvariantViolation;
  doc.expectDetail = "packet-conservation";
  doc.note = "example note";
  const std::string text = formatScenarioFile(doc);
  const ScenarioDoc back = parseScenarioFile(text);
  EXPECT_EQ(back.expect, RunStatus::InvariantViolation);
  EXPECT_EQ(back.expectDetail, "packet-conservation");
  EXPECT_EQ(back.note, "example note");
  EXPECT_EQ(scenarioDigest(back.config), scenarioDigest(doc.config));
  EXPECT_EQ(formatScenarioFile(back), text);  // canonical fixed point
}

TEST(FuzzCorpus, ParserRejectsGarbage) {
  EXPECT_THROW((void)parseScenarioFile(""), std::invalid_argument);
  EXPECT_THROW((void)parseScenarioFile("protocol=DBF\n"), std::invalid_argument);
  EXPECT_THROW((void)parseScenarioFile("# rcsim-scenario-v1\n# expect: weird\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parseScenarioFile("# rcsim-scenario-v1\nnot-an-option\n"),
               std::invalid_argument);
  EXPECT_THROW((void)loadScenarioFile("/nonexistent/path.scenario"), std::runtime_error);
}

TEST(FuzzMinimize, DropsIrrelevantEventsAndShrinksTopology) {
  // The 0-8 reference does not exist, so the run dies at t=8 with a
  // deterministic exception; everything else in the plan is noise the
  // minimizer must strip, and the 3x3 mesh should shrink around it.
  ScenarioConfig cfg = tinyConfig();
  cfg.faultPlan = fault::FaultPlan::parse(
      "6:loss:*:0.1;7:crash:4;8:fail:0-8;9.25:detect:0-1:500;12:partition:0,1");
  const RunOutcome original = runScenarioOnce(cfg, 30.0);
  ASSERT_EQ(original.status, RunStatus::Exception);

  MinimizeOptions opts;
  opts.wallLimitSec = 30.0;
  const MinimizeResult res = minimizeFinding(cfg, original, opts);
  EXPECT_TRUE(res.changed);
  EXPECT_EQ(res.config.faultPlan.events.size(), 1u);
  EXPECT_EQ(res.config.faultPlan.events[0].kind, fault::FaultKind::LinkFail);
  EXPECT_EQ(res.config.topology, TopologyKind::Inline);
  EXPECT_LT(res.config.inlineTopo.nodes, 9);
  // The minimized config still reproduces the identical finding key.
  const RunOutcome replay = runScenarioOnce(res.config, 30.0);
  EXPECT_EQ(findingKey(replay), findingKey(original));
}

TEST(FuzzCampaign, SameSeedSameCorpusDigestAndBank) {
  FuzzOptions opts;
  opts.seed = 99;
  opts.budget = 12;
  opts.wallLimitSec = 30.0;
  const FuzzReport a = runFuzzCampaign(opts, nullptr);
  const FuzzReport b = runFuzzCampaign(opts, nullptr);
  EXPECT_EQ(a.corpusDigest, b.corpusDigest);
  EXPECT_EQ(a.executions, 12);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_GT(a.corpusEntries, 0);
  EXPECT_GT(a.coverageFeatures, 0u);
}

}  // namespace
}  // namespace rcsim::fuzz
