#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rcsim {
namespace {

using namespace rcsim::literals;

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t, Time::zero());
  EXPECT_EQ(t.ns(), 0);
}

TEST(Time, FactoryConversions) {
  EXPECT_EQ(Time::seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(Time::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Time::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Time::nanoseconds(7).ns(), 7);
}

TEST(Time, Literals) {
  EXPECT_EQ((2_sec).ns(), 2'000'000'000);
  EXPECT_EQ((1.5_sec).ns(), 1'500'000'000);
  EXPECT_EQ((30_ms).ns(), 30'000'000);
  EXPECT_EQ((5_us).ns(), 5'000);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(1_sec + 500_ms, Time::milliseconds(1500));
  EXPECT_EQ(1_sec - 250_ms, Time::milliseconds(750));
  EXPECT_EQ(100_ms * 3, Time::milliseconds(300));
  Time t = 1_sec;
  t += 1_sec;
  EXPECT_EQ(t, 2_sec);
  t -= 500_ms;
  EXPECT_EQ(t, Time::milliseconds(1500));
}

TEST(Time, Ordering) {
  EXPECT_LT(1_ms, 1_sec);
  EXPECT_GT(Time::infinity(), Time::seconds(1e9));
  EXPECT_LE(Time::zero(), Time::zero());
}

TEST(Time, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ((1500_ms).toSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::seconds(0.25).toSeconds(), 0.25);
}

TEST(Time, StreamFormat) {
  std::ostringstream os;
  os << 1500_ms;
  EXPECT_EQ(os.str(), "1.5s");
}

}  // namespace
}  // namespace rcsim
