#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "exp/artifact.hpp"
#include "exp/executor.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "sim/random.hpp"
#include "sim/watchdog.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using fault::FaultPlan;

// ---------------------------------------------------------------- plan DSL

TEST(FaultPlan, RoundTripsEveryKind) {
  const std::string text =
      "395:loss:*:0.02;395:corrupt:24-25:0.01;396:reorder:*:0.1:50;"
      "397:ctrl-loss:*:0.2;397:ctrl-delay:24-25:250;398:ctrl-dup:*:0.5;"
      "399:detect:24-25:2000;400:fail:24-25;400:crash:24;400:partition:0,1,2;"
      "420:flapburst:24-25:3:10;"
      "460:heal:0,1,2;460:restart:24;460:recover:24-25";
  const FaultPlan p = FaultPlan::parse(text);
  ASSERT_EQ(p.events.size(), 14u);
  EXPECT_EQ(p.format(), text);               // input was already canonical
  EXPECT_EQ(FaultPlan::parse(p.format()), p);  // and the form is stable
}

TEST(FaultPlan, EmptyAndTrailingSemicolon) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_EQ(FaultPlan{}.format(), "");
  const FaultPlan p = FaultPlan::parse("400:fail:1-2;");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.format(), "400:fail:1-2");
}

TEST(FaultPlan, RejectsMalformedEvents) {
  const std::vector<std::string> bad{
      "400",                    // too few fields
      "400:fail",               // missing endpoints
      "400:explode:1-2",        // unknown kind
      "400:fail:12",            // endpoints need a dash
      "400:fail:a-b",           // non-numeric node
      "x:fail:1-2",             // non-numeric time
      "-1:fail:1-2",            // negative time
      "400:loss:*:1.5",         // rate out of range
      "400:loss:*",             // missing rate
      "400:reorder:*:0.1",      // missing jitter
      "400:reorder:*:0.1:-5",   // negative jitter
      "400:detect:1-2:-1",      // negative detect delay
      "400:partition:",         // empty group
      "400:fail:1-2:extra",     // too many fields for the kind
      "400:ctrl-loss:*",        // missing rate
      "400:ctrl-loss:*:1.5",    // rate out of range
      "400:ctrl-dup:1-2:-0.1",  // rate out of range
      "400:ctrl-delay:1-2:-5",  // negative delay
      "400:flapburst:*:3:10",   // star endpoints not allowed
      "400:flapburst:1-2:0:10", // count < 1
      "400:flapburst:1-2:2.5:10",  // non-integer count
      "400:flapburst:1-2:3:0",  // period must be > 0
      "400:flapburst:1-2:3",    // missing period
  };
  for (const auto& text : bad) {
    EXPECT_THROW((void)FaultPlan::parse(text), std::invalid_argument) << text;
  }
}

// ------------------------------------------------- plan DSL property fuzz

/// Draw one random-but-valid fault event. Rates and times are raw random
/// doubles, so the round-trip property below covers the printer's full
/// precision, not just pretty values.
fault::FaultEvent randomFaultEvent(Rng& rng) {
  fault::FaultEvent ev;
  ev.at = Time::nanoseconds(rng.uniformInt(0, 2'000'000'000'000LL));
  switch (rng.uniformInt(0, 13)) {
    case 0: ev.kind = fault::FaultKind::LinkFail; break;
    case 1: ev.kind = fault::FaultKind::LinkRecover; break;
    case 2: ev.kind = fault::FaultKind::NodeCrash; break;
    case 3: ev.kind = fault::FaultKind::NodeRestart; break;
    case 4: ev.kind = fault::FaultKind::LinkLoss; break;
    case 5: ev.kind = fault::FaultKind::LinkCorrupt; break;
    case 6: ev.kind = fault::FaultKind::LinkReorder; break;
    case 7: ev.kind = fault::FaultKind::DetectDelay; break;
    case 8: ev.kind = fault::FaultKind::Partition; break;
    case 9: ev.kind = fault::FaultKind::CtrlLoss; break;
    case 10: ev.kind = fault::FaultKind::CtrlDelay; break;
    case 11: ev.kind = fault::FaultKind::CtrlDup; break;
    case 12: ev.kind = fault::FaultKind::FlapBurst; break;
    default: ev.kind = fault::FaultKind::Heal; break;
  }
  switch (ev.kind) {
    case fault::FaultKind::LinkFail:
    case fault::FaultKind::LinkRecover:
    case fault::FaultKind::DetectDelay:
      ev.a = static_cast<NodeId>(rng.uniformInt(0, 9999));
      ev.b = static_cast<NodeId>(rng.uniformInt(0, 9999));
      if (ev.kind == fault::FaultKind::DetectDelay) {
        ev.detect = Time::milliseconds(rng.uniformInt(0, 100000));
      }
      break;
    case fault::FaultKind::NodeCrash:
    case fault::FaultKind::NodeRestart:
      ev.a = static_cast<NodeId>(rng.uniformInt(0, 9999));
      break;
    case fault::FaultKind::LinkLoss:
    case fault::FaultKind::LinkCorrupt:
    case fault::FaultKind::LinkReorder:
    case fault::FaultKind::CtrlLoss:
    case fault::FaultKind::CtrlDup:
    case fault::FaultKind::CtrlDelay:
      ev.allLinks = rng.uniform01() < 0.5;
      if (!ev.allLinks) {
        ev.a = static_cast<NodeId>(rng.uniformInt(0, 9999));
        ev.b = static_cast<NodeId>(rng.uniformInt(0, 9999));
      }
      if (ev.kind == fault::FaultKind::CtrlDelay) {
        ev.jitter = Time::milliseconds(rng.uniformInt(0, 100000));
      } else {
        ev.rate = rng.uniform01();
      }
      if (ev.kind == fault::FaultKind::LinkReorder) {
        ev.jitter = Time::milliseconds(rng.uniformInt(0, 100000));
      }
      break;
    case fault::FaultKind::FlapBurst:
      ev.a = static_cast<NodeId>(rng.uniformInt(0, 9999));
      ev.b = static_cast<NodeId>(rng.uniformInt(0, 9999));
      ev.count = static_cast<int>(rng.uniformInt(1, 1000));
      ev.period = Time::seconds(static_cast<double>(rng.uniformInt(1, 3600)));
      break;
    case fault::FaultKind::Partition:
    case fault::FaultKind::Heal: {
      const auto size = rng.uniformInt(1, 12);
      for (std::int64_t i = 0; i < size; ++i) {
        ev.group.push_back(static_cast<NodeId>(rng.uniformInt(0, 9999)));
      }
      break;
    }
  }
  return ev;
}

TEST(FaultPlan, PropertyRandomValidPlansRoundTripByteIdentically) {
  Rng rng{0xFA17'F1A9ULL};
  for (int round = 0; round < 200; ++round) {
    FaultPlan plan;
    const auto count = rng.uniformInt(1, 8);
    for (std::int64_t i = 0; i < count; ++i) plan.events.push_back(randomFaultEvent(rng));
    const std::string text = plan.format();
    const FaultPlan back = FaultPlan::parse(text);
    EXPECT_EQ(back, plan) << "round " << round << ": " << text;
    EXPECT_EQ(back.format(), text) << "round " << round;
  }
}

TEST(FaultPlan, PropertyRandomBytesNeverCrashTheParser) {
  // Random strings over the DSL's own alphabet (plus junk) must either
  // parse or throw invalid_argument — nothing else, and no UB for the
  // sanitizer job to find. Seeded, so a failure replays exactly.
  static constexpr char kAlphabet[] = "0123456789:;-*,.eE+ \tabchlrfpxz\\\"\x01\x7f";
  Rng rng{0xDEAD'BEEFULL};
  for (int round = 0; round < 3000; ++round) {
    std::string text;
    const auto len = rng.uniformInt(0, 48);
    for (std::int64_t i = 0; i < len; ++i) {
      text += kAlphabet[rng.uniformInt(0, static_cast<std::int64_t>(sizeof(kAlphabet)) - 2)];
    }
    try {
      (void)FaultPlan::parse(text);
    } catch (const std::invalid_argument&) {
      // the only contract-approved escape
    }
  }
}

TEST(FaultPlan, PropertyMutatedValidPlansThrowCleanlyOrParse) {
  // Single-character corruptions of a canonical plan: the parser must
  // accept or reject each one cleanly, never crash or loop.
  const std::string canon =
      "395:loss:*:0.02;399:detect:24-25:2000;400:partition:0,1,2;460:recover:24-25";
  Rng rng{77};
  static constexpr char kReplacements[] = "0:;-*,.x ";
  for (int round = 0; round < 500; ++round) {
    std::string text = canon;
    const auto pos = rng.uniformInt(0, static_cast<std::int64_t>(text.size()) - 1);
    text[static_cast<std::size_t>(pos)] =
        kReplacements[rng.uniformInt(0, static_cast<std::int64_t>(sizeof(kReplacements)) - 2)];
    try {
      const FaultPlan p = FaultPlan::parse(text);
      EXPECT_EQ(FaultPlan::parse(p.format()), p) << text;  // survivors still round-trip
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(FaultPlan, RoundTripsThroughScenarioOptions) {
  ScenarioConfig cfg;
  cfg.faultPlan = FaultPlan::parse("400:crash:24;460:restart:24");
  ScenarioConfig again;
  again.faultPlan = FaultPlan::parse(cfg.faultPlan.format());
  EXPECT_EQ(cfg.faultPlan, again.faultPlan);
}

// ------------------------------------------------------------- injection

ScenarioConfig faultBase(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.injectFailure = false;  // the plan is the whole fault schedule
  return cfg;
}

TEST(FaultInjector, CrashAndRestartRecover) {
  ScenarioConfig cfg = faultBase(2);
  cfg.faultPlan = FaultPlan::parse("400:crash:24;460:restart:24");
  Scenario sc{cfg};
  sc.run();

  const auto* inj = sc.faultInjector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->nodeCrashes(), 1u);
  EXPECT_EQ(inj->nodeRestarts(), 1u);
  EXPECT_FALSE(inj->nodeDown(24));

  // The restarted node runs a live protocol again and its links came back.
  Network& net = sc.network();
  EXPECT_NE(net.node(24).protocol(), nullptr);
  for (const NodeId nb : net.node(24).neighbors()) {
    EXPECT_TRUE(net.findLink(24, nb)->isUp()) << "link 24-" << nb;
  }
  // Plenty of post-restart time: the network reconverged to a usable path.
  bool loop = false;
  bool blackhole = false;
  const auto path = net.fibWalk(sc.sender(), sc.receiver(), &loop, &blackhole);
  EXPECT_FALSE(loop);
  EXPECT_FALSE(blackhole);
  EXPECT_GE(path.size(), 2u);
}

TEST(FaultInjector, PartitionCutsAndHealRestores) {
  ScenarioConfig cfg = faultBase(3);
  // Rows 0-2 of the 7x7 mesh vs the rest: sender (row 0) loses the
  // receiver (row 6) for 60 s.
  std::string group;
  for (int n = 0; n <= 20; ++n) {
    if (n != 0) group += ',';
    group += std::to_string(n);
  }
  cfg.faultPlan = FaultPlan::parse("400:partition:" + group + ";460:heal:" + group);
  Scenario sc{cfg};
  sc.run();

  const auto* inj = sc.faultInjector();
  ASSERT_NE(inj, nullptr);
  // Degree-4 mesh: exactly the 7 vertical row2-row3 links cross the cut.
  EXPECT_EQ(inj->linkFailures(), 7u);
  EXPECT_EQ(inj->linkRecoveries(), 7u);
  for (const auto& link : sc.network().links()) {
    EXPECT_TRUE(link->isUp());
  }
  // The outage cost real deliveries but traffic resumed after the heal.
  const auto& d = sc.stats().data();
  EXPECT_GT(d.delivered, 0u);
  EXPECT_LT(d.delivered, sc.packetsSent());
}

TEST(FaultInjector, CorruptionDropsAreAccounted) {
  ScenarioConfig cfg = faultBase(4);
  cfg.faultPlan = FaultPlan::parse("395:corrupt:*:0.05;500:corrupt:*:0");
  Scenario sc{cfg};
  sc.run();

  const auto& d = sc.stats().data();
  EXPECT_GT(d.dropCorrupt, 0u);
  EXPECT_EQ(d.dropLoss, 0u);
  // Corrupted packets are dropped, not lost from the books.
  EXPECT_EQ(sc.packetsSent(), d.delivered + d.totalDropped());
}

TEST(FaultInjector, DetectDelayReschedulesPendingDetection) {
  // Regression: a detect event landing while the link is already down (and
  // its detection pending) used to only update the config — the in-flight
  // notification kept its old deadline. Shortening the delay after the
  // failure must pull detection (and thus reconvergence) forward.
  ScenarioConfig slow = faultBase(8);
  slow.protocol = ProtocolKind::LinkState;
  // Pin the flow across the link the plan fails, so detection timing is
  // on the forwarding path (faultBase draws random endpoints otherwise).
  slow.pinSrc = 24;
  slow.pinDst = 25;
  slow.trafficStart = 390_sec;
  slow.trafficStop = 460_sec;
  slow.endAt = 480_sec;
  slow.faultPlan =
      FaultPlan::parse("399:detect:24-25:30000;400:fail:24-25");  // notice at 430
  ScenarioConfig quick = slow;
  quick.faultPlan = FaultPlan::parse(
      "399:detect:24-25:30000;400:fail:24-25;405:detect:24-25:100");  // pulled to 405.0001

  Scenario slowSc{slow};
  slowSc.run();
  Scenario quickSc{quick};
  quickSc.run();

  // ~25 s less black-holing at 20 pps: the rescheduled run delivers
  // hundreds more packets. Far more than noise for one seed.
  const auto& sd = slowSc.stats().data();
  const auto& qd = quickSc.stats().data();
  EXPECT_GT(qd.delivered, sd.delivered + 200);
  EXPECT_LT(qd.dropLinkDown, sd.dropLinkDown);
}

TEST(FaultInjector, FlapBurstCountsFailuresAndRecoveries) {
  ScenarioConfig cfg = faultBase(9);
  cfg.trafficStart = 390_sec;
  cfg.trafficStop = 440_sec;
  cfg.endAt = 460_sec;
  cfg.faultPlan = FaultPlan::parse("400:flapburst:24-25:4:8");
  Scenario sc{cfg};
  sc.run();
  const auto* inj = sc.faultInjector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->linkFailures(), 4u);
  EXPECT_EQ(inj->linkRecoveries(), 4u);
  EXPECT_TRUE(sc.network().findLink(24, 25)->isUp());
}

TEST(FaultInjector, DanglingLinkReferenceThrowsAtEventTime) {
  ScenarioConfig cfg = faultBase(5);
  cfg.faultPlan = FaultPlan::parse("400:fail:0-48");  // not an edge of the mesh
  Scenario sc{cfg};
  EXPECT_THROW(sc.run(), std::runtime_error);
}

// -------------------------------------------------------- invariant checker

TEST(InvariantChecker, CleanOnPaperScenario) {
  ScenarioConfig cfg;  // default config = the paper's single-failure run
  cfg.checkInvariants = true;
  Scenario sc{cfg};
  sc.run();  // would throw on any violation
  const auto* checker = sc.invariantChecker();
  ASSERT_NE(checker, nullptr);
  EXPECT_TRUE(checker->clean());
  EXPECT_GT(checker->originated(), 0u);
  EXPECT_GT(checker->delivered(), 0u);
}

TEST(InvariantChecker, CleanUnderCrashAndImpairments) {
  ScenarioConfig cfg = faultBase(6);
  cfg.checkInvariants = true;
  cfg.faultPlan = FaultPlan::parse(
      "395:loss:*:0.02;400:crash:24;460:restart:24;500:loss:*:0");
  Scenario sc{cfg};
  sc.run();
  EXPECT_TRUE(sc.invariantChecker()->clean());
}

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, PollThrowsOnceAfterDeadline) {
  EXPECT_NO_THROW(watchdog::poll());  // disarmed: free
  {
    watchdog::Scope scope{0.0};  // <= 0 keeps it disarmed
    EXPECT_NO_THROW(watchdog::poll());
  }
  watchdog::arm(1e-9);
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
  while (std::chrono::steady_clock::now() < until) {
  }
  EXPECT_THROW(watchdog::poll(), watchdog::Timeout);
  EXPECT_NO_THROW(watchdog::poll());  // the throw disarmed it
}

// ------------------------------------------------------- hardened executor

/// A quick spec: small traffic window, LinkState (fastest protocol), one
/// cell per entry in `throwingSeeds` deliberately exploding.
ScenarioConfig quickConfig() {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::LinkState;
  cfg.injectFailure = false;
  cfg.trafficStart = 50_sec;
  cfg.trafficStop = 80_sec;
  cfg.failAt = 60_sec;  // watermark only
  cfg.endAt = 100_sec;
  return cfg;
}

exp::ExperimentSpec quickSpec(bool withThrowingCell) {
  exp::ExperimentSpec spec;
  spec.name = "test_quick";
  spec.title = "test";
  spec.description = "test";
  for (int i = 0; i < 3; ++i) {
    exp::CellSpec cell;
    cell.id = "cell" + std::to_string(i);
    cell.label = cell.id;
    cell.config = quickConfig();
    cell.config.mesh.degree = 4 + i;
    spec.cells.push_back(std::move(cell));
  }
  if (withThrowingCell) {
    exp::CellSpec cell;
    cell.id = "bomb";
    cell.label = "bomb";
    cell.config = quickConfig();
    cell.run = [](const ScenarioConfig& cfg) -> RunResult {
      if (cfg.seed == 2) throw std::runtime_error("deliberate test explosion");
      return runScenario(cfg);
    };
    spec.cells.push_back(std::move(cell));
  }
  spec.render = [](const exp::ExperimentSpec&, const exp::ExperimentResult&) {};
  return spec;
}

TEST(SweepExecutor, FailedCellIsIsolatedAndReported) {
  const exp::ExperimentSpec withBomb = quickSpec(true);
  const exp::ExperimentSpec healthy = quickSpec(false);
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult got = executor.execute(withBomb, 3);
  const exp::ExperimentResult want = executor.execute(healthy, 3);

  ASSERT_EQ(got.cells.size(), 4u);
  // The bomb cell carries a failure report naming the seed that threw...
  const exp::CellResult& bomb = got.cells[3];
  ASSERT_TRUE(bomb.failed());
  ASSERT_EQ(bomb.failures.size(), 1u);
  EXPECT_EQ(bomb.failures[0].seed, 2u);
  EXPECT_EQ(bomb.failures[0].error, "deliberate test explosion");
  // ...and no misleading partial aggregate.
  EXPECT_EQ(bomb.totals.sent, 0.0);
  EXPECT_EQ(bomb.agg.runs, 0);

  // Every healthy cell matches a bomb-free sweep bit for bit.
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_FALSE(got.cells[c].failed());
    EXPECT_EQ(got.cells[c].totals.sent, want.cells[c].totals.sent);
    EXPECT_EQ(got.cells[c].totals.delivered, want.cells[c].totals.delivered);
    EXPECT_EQ(got.cells[c].totals.dropNoRoute, want.cells[c].totals.dropNoRoute);
    EXPECT_EQ(got.cells[c].agg.routingConvergenceSec, want.cells[c].agg.routingConvergenceSec);
    EXPECT_EQ(got.cells[c].agg.delivered, want.cells[c].agg.delivered);
  }
}

TEST(SweepExecutor, InvariantViolationEquivalentErrorsFailOnlyTheirCell) {
  // A dangling fault-plan reference throws inside Scenario::run — the
  // executor must turn that into a per-cell report, not a sweep abort.
  exp::ExperimentSpec spec = quickSpec(false);
  spec.cells[1].config.faultPlan = FaultPlan::parse("60:fail:0-48");
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult res = executor.execute(spec, 2);
  ASSERT_EQ(res.cells.size(), 3u);
  EXPECT_FALSE(res.cells[0].failed());
  EXPECT_TRUE(res.cells[1].failed());
  EXPECT_EQ(res.cells[1].failures.size(), 2u);  // every replica hits it
  EXPECT_FALSE(res.cells[2].failed());
}

// ----------------------------------------------------------- artifact I/O

TEST(Artifact, FailedCellsCarryFailureReports) {
  const exp::ExperimentSpec spec = quickSpec(true);
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult res = executor.execute(spec, 3);
  const std::string json = dumpJson(exp::buildArtifact(spec, res));
  EXPECT_NE(json.find("\"failed_cells\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("deliberate test explosion"), std::string::npos);
  // The failed cell has failures instead of totals; healthy cells keep
  // their aggregates (4 cells, 3 healthy).
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("\"transport_session_resets\""), std::string::npos);
}

TEST(Artifact, WritesAtomicallyAndLeavesNoTempFiles) {
  const exp::ExperimentSpec spec = quickSpec(false);
  exp::SweepExecutor executor{2};
  const exp::ExperimentResult res = executor.execute(spec, 1);

  const auto dir = std::filesystem::temp_directory_path() / "rcsim_test_artifacts";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "quick.json").string();
  exp::writeArtifact(spec, res, path);
  // Overwrite in place — the rename replaces the old document whole.
  exp::writeArtifact(spec, res, path);

  ASSERT_TRUE(std::filesystem::exists(path));
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string().find(".tmp."), std::string::npos)
        << "leftover temp file " << e.path();
  }
  EXPECT_EQ(entries, 1u);

  std::ifstream in{path};
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\": \"rcsim-experiment-v1\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rcsim
