#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

/// A compressed timeline so scenario tests stay quick.
ScenarioConfig quickConfig(ProtocolKind kind, int degree, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = degree;
  cfg.seed = seed;
  cfg.trafficStart = 90_sec;
  cfg.trafficStop = 150_sec;
  cfg.failAt = 100_sec;
  cfg.endAt = 200_sec;
  return cfg;
}

TEST(Scenario, EndpointsOnFirstAndLastRow) {
  Scenario sc{quickConfig(ProtocolKind::Dbf, 4, 3)};
  EXPECT_LT(sc.sender(), 7);                   // row 0
  EXPECT_GE(sc.receiver(), 42);                // row 6
  EXPECT_LT(sc.receiver(), 49);
  EXPECT_EQ(sc.network().nodeCount(), 49u);
}

TEST(Scenario, FailedLinkWasOnForwardingPath) {
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 4, 5);
  Scenario sc{cfg};
  sc.run();
  ASSERT_NE(sc.failedLink(), nullptr);
  EXPECT_FALSE(sc.failedLink()->isUp());
  EXPECT_TRUE(sc.preFailurePathShortest());
  EXPECT_GE(sc.preFailurePathHops(), 6);  // at least the row distance
}

TEST(Scenario, SeedReproducibility) {
  const ScenarioConfig cfg = quickConfig(ProtocolKind::Bgp3, 5, 11);
  const RunResult a = runScenario(cfg);
  const RunResult b = runScenario(cfg);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.data.delivered, b.data.delivered);
  EXPECT_EQ(a.data.dropNoRoute, b.data.dropNoRoute);
  EXPECT_EQ(a.routingConvergenceSec, b.routingConvergenceSec);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.throughput, b.throughput);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const RunResult a = runScenario(quickConfig(ProtocolKind::Dbf, 4, 1));
  const RunResult b = runScenario(quickConfig(ProtocolKind::Dbf, 4, 2));
  // Different sender/receiver columns or failed link with high probability;
  // the executed event counts virtually never coincide.
  EXPECT_NE(a.eventsExecuted, b.eventsExecuted);
}

TEST(Scenario, NoFailureMeansNoDropsAfterWarmup) {
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 4, 7);
  cfg.injectFailure = false;
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(r.sent, 1200u);  // 60 s * 20 pkt/s
  EXPECT_EQ(r.data.delivered, r.sent);
  EXPECT_EQ(r.data.totalDropped(), 0u);
  EXPECT_EQ(r.residual(), 0);
}

TEST(Scenario, SentMatchesRateAndWindow) {
  const RunResult r = runScenario(quickConfig(ProtocolKind::Rip, 4, 9));
  EXPECT_EQ(r.sent, 1200u);
}

TEST(Scenario, ThroughputSeriesShapedByTrafficWindow) {
  const RunResult r = runScenario(quickConfig(ProtocolKind::Dbf, 6, 13));
  EXPECT_EQ(r.throughput[80], 0.0);    // before traffic
  EXPECT_EQ(r.throughput[95], 20.0);   // steady state
  EXPECT_EQ(r.throughput[170], 0.0);   // after traffic stop
}

TEST(Scenario, FractionalEndTimeKeepsFinalBucket) {
  // Regression: endSec was truncated (static_cast<int> of 120.5 -> 120), so
  // a run ending mid-second silently dropped the final throughput/delay
  // bucket — deliveries at endAt - 0.1 s vanished from the series.
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 4, 7);
  cfg.injectFailure = false;
  cfg.trafficStop = Time::seconds(120.5);
  cfg.endAt = Time::seconds(120.5);
  const RunResult r = runScenario(cfg);
  ASSERT_EQ(r.throughput.size(), 121u);  // ceil(120.5) buckets
  ASSERT_EQ(r.meanDelay.size(), 121u);
  // Traffic runs through the fractional last second; packets sent in
  // [120.0, 120.4] deliver well before 120.5 and must be counted.
  EXPECT_GT(r.throughput[120], 0.0);
}

TEST(Scenario, RunnerAggregatesMeans) {
  ScenarioConfig cfg = quickConfig(ProtocolKind::Dbf, 6, 1);
  const auto results = runMany(cfg, 4, /*startSeed=*/1, /*threads=*/2);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].seed, 1u + i);
  }
  const auto agg = Aggregate::over(results);
  EXPECT_EQ(agg.runs, 4);
  EXPECT_DOUBLE_EQ(agg.sent, 1200.0);
  EXPECT_GT(agg.delivered, 1100.0);
  EXPECT_EQ(agg.failSec, 100);
}

TEST(Scenario, AggregateTakesFailSecFromFirstRun) {
  // failSec is a property of the batch's shared config; Aggregate::over
  // reads it from the first run (and asserts the rest agree) instead of
  // whichever run iterates last.
  RunResult a;
  a.failSec = 77;
  a.throughput = {1.0, 2.0};
  RunResult b;
  b.failSec = 77;
  const auto agg = Aggregate::over({a, b});
  EXPECT_EQ(agg.failSec, 77);
  EXPECT_EQ(agg.throughput.size(), 2u);
}

TEST(Scenario, ParallelRunnerMatchesSerial) {
  ScenarioConfig cfg = quickConfig(ProtocolKind::Rip, 5, 1);
  const auto serial = runMany(cfg, 3, 1, /*threads=*/1);
  const auto parallel = runMany(cfg, 3, 1, /*threads=*/3);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].data.delivered, parallel[i].data.delivered);
    EXPECT_EQ(serial[i].eventsExecuted, parallel[i].eventsExecuted);
  }
}

TEST(Scenario, LinkStateProtocolRunsEndToEnd) {
  const RunResult r = runScenario(quickConfig(ProtocolKind::LinkState, 4, 3));
  EXPECT_GT(r.data.delivered, r.sent - 10);
  EXPECT_TRUE(r.finalPathShortest);
}

}  // namespace
}  // namespace rcsim
