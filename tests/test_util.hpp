#pragma once

// Shared test harness: builds a Network from a Topology with one protocol
// kind everywhere, ready to run — a miniature of core/Scenario for unit
// tests on arbitrary hand-made graphs.

#include <memory>

#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/scheduler.hpp"
#include "topo/topology.hpp"

namespace rcsim::testutil {

class TestNet {
 public:
  explicit TestNet(const Topology& topo, ProtocolKind kind,
                   ProtocolConfig protoCfg = {}, LinkConfig linkCfg = {},
                   std::uint64_t seed = 1, bool ecmp = false)
      : net_{sched_, Rng{seed}} {
    for (int i = 0; i < topo.nodeCount; ++i) net_.addNode();
    for (const auto& [a, b] : topo.edges) net_.addLink(a, b, linkCfg);
    net_.finalize(ecmp);
    for (NodeId id = 0; id < static_cast<NodeId>(net_.nodeCount()); ++id) {
      Node& node = net_.node(id);
      node.setProtocol(makeProtocol(kind, node, protoCfg));
    }
  }

  /// Start protocols and run until `horizon`.
  void warmUp(Time horizon) {
    net_.startProtocols();
    sched_.run(horizon);
  }

  void runUntil(Time horizon) { sched_.run(horizon); }

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] Network& net() { return net_; }
  [[nodiscard]] Node& node(NodeId id) { return net_.node(id); }
  [[nodiscard]] NodeId nextHop(NodeId node, NodeId dst) {
    return net_.node(node).fib().nextHop(dst);
  }

  template <typename P>
  [[nodiscard]] P& protocolAs(NodeId id) {
    return dynamic_cast<P&>(*net_.node(id).protocol());
  }

 private:
  Scheduler sched_;
  Network net_;
};

/// A path graph 0-1-2-...-(n-1).
inline Topology lineTopology(int n) {
  Topology t;
  t.nodeCount = n;
  for (NodeId i = 0; i + 1 < n; ++i) t.edges.emplace_back(i, i + 1);
  return t;
}

/// A cycle 0-1-...-(n-1)-0.
inline Topology ringTopology(int n) {
  Topology t = lineTopology(n);
  t.edges.emplace_back(0, n - 1);
  return t;
}

/// Two disjoint paths between 0 and n-1 (a "theta" without the middle bar):
/// 0-1-...-k-(n-1) and 0-(k+1)-...-(n-2)-(n-1).
inline Topology twoPathTopology() {
  // 0 - 1 - 4, 0 - 2 - 3 - 4: a 4-hop alternative to a 2-hop primary.
  Topology t;
  t.nodeCount = 5;
  t.edges = {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}};
  return t;
}

}  // namespace rcsim::testutil
