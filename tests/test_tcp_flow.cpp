#include "traffic/tcp_flow.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

/// Line 0-1-2 with static routes; the flow runs 0 -> 2.
struct TcpFixture : ::testing::Test {
  TcpFixture() : net{sched, Rng{2}} {
    for (int i = 0; i < 3; ++i) net.addNode();
    net.addLink(0, 1, link);
    net.addLink(1, 2, link);
    net.finalize();
    net.node(0).setRoute(2, 1);
    net.node(1).setRoute(2, 2);
    net.node(2).setRoute(0, 1);
    net.node(1).setRoute(0, 0);
  }

  TcpFlow::Config config(Time start, Time stop) {
    TcpFlow::Config cfg;
    cfg.flowId = 1;
    cfg.src = 0;
    cfg.dst = 2;
    cfg.window = 4;
    cfg.start = start;
    cfg.stop = stop;
    cfg.rto = 500_ms;
    return cfg;
  }

  Scheduler sched;
  LinkConfig link;
  Network net;
};

TEST_F(TcpFixture, TransfersAtWindowPerRttWhenClean) {
  TcpFlow flow{net, config(1_sec, 3_sec)};
  flow.install();
  sched.run(10_sec);
  // RTT ~ 2 * 2 * (0.8ms tx + 1ms prop) ~ 7.2 ms; 2 s of window-4 transfer
  // moves on the order of a thousand packets.
  EXPECT_GT(flow.goodputPackets(), 500u);
  EXPECT_EQ(flow.goodputPackets(), flow.acked());
  EXPECT_EQ(flow.retransmissions(), 0u);
}

TEST_F(TcpFixture, GoodputSeriesCoversTransferWindow) {
  TcpFlow flow{net, config(1_sec, 3_sec)};
  flow.install();
  sched.run(10_sec);
  EXPECT_GT(flow.goodputAt(1), 0.0);
  EXPECT_GT(flow.goodputAt(2), 0.0);
  EXPECT_EQ(flow.goodputAt(5), 0.0);
}

TEST_F(TcpFixture, StallsDuringBlackholeThenRecoversViaRto) {
  TcpFlow flow{net, config(1_sec, 20_sec)};
  flow.install();
  // Remove node 1's route at t=2 s, restore at t=4 s: a transient
  // black-hole on the data path.
  sched.scheduleAt(2_sec, [this] { net.node(1).setRoute(2, kInvalidNode); });
  sched.scheduleAt(4_sec, [this] { net.node(1).setRoute(2, 2); });
  sched.run(25_sec);
  const auto during = flow.goodputAt(3);  // deep inside the outage
  EXPECT_EQ(during, 0.0);
  EXPECT_GT(flow.goodputAt(5), 0.0);  // recovered
  EXPECT_GT(flow.retransmissions(), 0u);
  // Reliable: everything offered before the window closed eventually acked.
  sched.run(40_sec);
  EXPECT_EQ(flow.acked(), flow.uniquePacketsSent());
}

TEST_F(TcpFixture, AckPathOutageAlsoStallsTheWindow) {
  TcpFlow flow{net, config(1_sec, 20_sec)};
  flow.install();
  // Break only the *reverse* route (acks), data path intact.
  sched.scheduleAt(2_sec, [this] { net.node(1).setRoute(0, kInvalidNode); });
  sched.scheduleAt(4_sec, [this] { net.node(1).setRoute(0, 0); });
  sched.run(25_sec);
  EXPECT_EQ(flow.goodputAt(3), 0.0);  // receiver gets nothing new: window closed
  EXPECT_GT(flow.goodputAt(6), 0.0);
  EXPECT_GT(flow.retransmissions(), 0u);
}

TEST_F(TcpFixture, DuplicateDataDeliveredOnceToGoodput) {
  TcpFlow flow{net, config(1_sec, Time::seconds(1.001))};  // ~1 window only
  flow.install();
  sched.run(30_sec);
  EXPECT_EQ(flow.goodputPackets(), flow.uniquePacketsSent());
  EXPECT_LE(flow.uniquePacketsSent(), 4u);
}

TEST_F(TcpFixture, StopTimeEndsNewDataButNotReliability) {
  TcpFlow flow{net, config(1_sec, 2_sec)};
  flow.install();
  sched.run(60_sec);
  EXPECT_EQ(flow.acked(), flow.uniquePacketsSent());
  EXPECT_EQ(flow.goodputPackets(), flow.uniquePacketsSent());
}

}  // namespace
}  // namespace rcsim
