// Network container and topology-query tests.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "obs/trace_io.hpp"
#include "sim/scheduler.hpp"
#include "topo/topology.hpp"

namespace rcsim {
namespace {

TEST(Network, DenseIdsInCreationOrder) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  EXPECT_EQ(net.addNode(), 0);
  EXPECT_EQ(net.addNode(), 1);
  EXPECT_EQ(net.addNode(), 2);
  EXPECT_EQ(net.nodeCount(), 3u);
}

TEST(Network, FindLinkEitherDirection) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  net.addNode();
  net.addNode();
  Link& l = net.addLink(0, 1, LinkConfig{});
  EXPECT_EQ(net.findLink(0, 1), &l);
  EXPECT_EQ(net.findLink(1, 0), &l);
  EXPECT_EQ(net.findLink(0, 0), nullptr);
}

TEST(Network, NeighborsReflectAttachedLinks) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  for (int i = 0; i < 4; ++i) net.addNode();
  net.addLink(0, 1, LinkConfig{});
  net.addLink(0, 2, LinkConfig{});
  EXPECT_EQ(net.node(0).neighbors().size(), 2u);
  EXPECT_EQ(net.node(3).neighbors().size(), 0u);
  EXPECT_TRUE(net.node(0).neighborReachable(1));
  net.findLink(0, 1)->fail();
  EXPECT_FALSE(net.node(0).neighborReachable(1));
}

TEST(Network, ShortestPathLiveOnMesh) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  for (int i = 0; i < topo.nodeCount; ++i) net.addNode();
  for (const auto& [a, b] : topo.edges) net.addLink(a, b, LinkConfig{});
  net.finalize();
  EXPECT_EQ(net.shortestDistLive(gridId(0, 0, 5), gridId(4, 4, 5)), 8);
  // Cutting a corner link forces the detour accounting to update.
  net.findLink(gridId(0, 0, 5), gridId(0, 1, 5))->fail();
  net.findLink(gridId(0, 0, 5), gridId(1, 0, 5))->fail();
  EXPECT_EQ(net.shortestDistLive(gridId(0, 0, 5), gridId(4, 4, 5)), -1);
}

TEST(Network, FibWalkTrivialCases) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  net.addNode();
  net.addNode();
  net.addLink(0, 1, LinkConfig{});
  net.finalize();
  bool loop = true;
  bool blackhole = false;
  // src == dst: a one-node path, no blackhole.
  const auto self = net.fibWalk(0, 0, &loop, &blackhole);
  EXPECT_EQ(self, (std::vector<NodeId>{0}));
  EXPECT_FALSE(loop);
  EXPECT_FALSE(blackhole);
  // No route installed: immediate blackhole.
  const auto walk = net.fibWalk(0, 1, &loop, &blackhole);
  EXPECT_TRUE(blackhole);
  EXPECT_EQ(walk, (std::vector<NodeId>{0}));
}

TEST(Network, PacketIdsAreUnique) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  const auto a = net.nextPacketId();
  const auto b = net.nextPacketId();
  EXPECT_NE(a, b);
}

TEST(Network, TraceSinkReceivesFailureEvents) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  net.addNode();
  net.addNode();
  Link& l = net.addLink(0, 1, LinkConfig{});
  obs::MemoryTraceSink sink;
  net.trace().setSink(&sink);
  l.fail();
  l.recover();
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].kind, obs::TraceKind::LinkDown);
  EXPECT_EQ(sink.events()[1].kind, obs::TraceKind::LinkUp);
  EXPECT_EQ(sink.events()[0].a, 0);
  EXPECT_EQ(sink.events()[0].b, 1);
  EXPECT_EQ(sink.events()[0].category(), obs::TraceCategory::Failure);
}

TEST(Network, TraceCategoryMaskFiltersEvents) {
  Scheduler sched;
  Network net{sched, Rng{1}};
  net.addNode();
  net.addNode();
  Link& l = net.addLink(0, 1, LinkConfig{});
  obs::MemoryTraceSink sink;
  net.trace().setSink(&sink);
  net.trace().setCategoryMask(1u << static_cast<unsigned>(obs::TraceCategory::Routing));
  l.fail();
  EXPECT_TRUE(sink.events().empty());  // Failure bit is off
  net.trace().setCategoryMask(obs::Tracer::kAllCategories);
  l.recover();
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].kind, obs::TraceKind::LinkUp);
}

}  // namespace
}  // namespace rcsim
