#include "net/link.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

struct LinkFixture : ::testing::Test {
  LinkFixture() : net{sched, Rng{1}} {
    a = net.addNode();
    b = net.addNode();
    cfg.bandwidthBps = 8e6;  // 1000 B packet -> 1 ms serialization
    cfg.propDelay = 1_ms;
    cfg.queueCapacity = 3;
    cfg.detectDelay = 50_ms;
    link = &net.addLink(a, b, cfg);
    net.finalize();

    net.hooks().onDeliver = [this](Time t, NodeId node, const Packet& p) {
      deliveries.push_back({t, node, p.id});
    };
    net.hooks().onDrop = [this](Time, NodeId, const Packet&, DropReason r) {
      drops.push_back(r);
    };
  }

  Packet makePacket(std::uint32_t bytes = 1000) {
    Packet p;
    p.id = net.nextPacketId();
    p.src = a;
    p.dst = b;
    p.ttl = 64;
    p.sizeBytes = bytes;
    p.kind = PacketKind::Data;
    p.sendTime = sched.now();
    return p;
  }

  struct Delivery {
    Time t;
    NodeId node;
    std::uint64_t id;
  };

  Scheduler sched;
  Network net;
  NodeId a{}, b{};
  LinkConfig cfg;
  Link* link = nullptr;
  std::vector<Delivery> deliveries;
  std::vector<DropReason> drops;
};

TEST_F(LinkFixture, DeliversAfterSerializationPlusPropagation) {
  link->send(a, makePacket());
  sched.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // 1000 B at 8 Mb/s = 1 ms, plus 1 ms propagation.
  EXPECT_EQ(deliveries[0].t, 2_ms);
  EXPECT_EQ(deliveries[0].node, b);
}

TEST_F(LinkFixture, SerializesBackToBackPackets) {
  link->send(a, makePacket());
  link->send(a, makePacket());
  link->send(a, makePacket());
  sched.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].t, 2_ms);
  EXPECT_EQ(deliveries[1].t, 3_ms);  // queued behind the first transmission
  EXPECT_EQ(deliveries[2].t, 4_ms);
}

TEST_F(LinkFixture, DirectionsAreIndependent) {
  link->send(a, makePacket());
  Packet back = makePacket();
  back.src = b;
  back.dst = a;
  link->send(b, std::move(back));
  sched.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].t, 2_ms);  // no serialization contention across directions
  EXPECT_EQ(deliveries[1].t, 2_ms);
}

TEST_F(LinkFixture, DropTailQueueOverflow) {
  // Capacity 3: one packet in service + 3 queued fit; the 5th drops.
  for (int i = 0; i < 5; ++i) link->send(a, makePacket());
  sched.run();
  EXPECT_EQ(deliveries.size(), 4u);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::QueueOverflow);
}

TEST_F(LinkFixture, SendOnDownLinkDrops) {
  link->fail();
  link->send(a, makePacket());
  sched.run();
  EXPECT_TRUE(deliveries.empty());
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::LinkDown);
}

TEST_F(LinkFixture, FailureCutsInFlightPackets) {
  link->send(a, makePacket());
  sched.scheduleAt(Time::microseconds(1500), [this] { link->fail(); });  // mid-propagation
  sched.run();
  EXPECT_TRUE(deliveries.empty());
  ASSERT_GE(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::InFlightCut);
}

TEST_F(LinkFixture, FailureFlushesQueuedPackets) {
  for (int i = 0; i < 3; ++i) link->send(a, makePacket());
  sched.scheduleAt(Time::microseconds(100), [this] { link->fail(); });
  sched.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(drops.size(), 3u);  // 1 in service (cut) + 2 queued (flushed)
  for (const auto r : drops) EXPECT_EQ(r, DropReason::InFlightCut);
}

TEST_F(LinkFixture, RecoveryRestoresDelivery) {
  link->fail();
  sched.scheduleAt(1_sec, [this] { link->recover(); });
  sched.scheduleAt(2_sec, [this] { link->send(a, makePacket()); });
  sched.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].t, 2_sec + 2_ms);
}

TEST_F(LinkFixture, TransmitterRestartsAfterFailRecoverDuringService) {
  // Packet in service when the link fails; link recovers before the
  // serialization timer fires; fresh packets must still flow.
  link->send(a, makePacket());
  sched.scheduleAt(Time::microseconds(200), [this] { link->fail(); });
  sched.scheduleAt(Time::microseconds(400), [this] { link->recover(); });
  sched.scheduleAt(Time::microseconds(500), [this] { link->send(a, makePacket()); });
  sched.run();
  ASSERT_EQ(deliveries.size(), 1u);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::InFlightCut);
}

TEST_F(LinkFixture, FailIsIdempotent) {
  link->fail();
  link->fail();
  EXPECT_FALSE(link->isUp());
  link->recover();
  link->recover();
  EXPECT_TRUE(link->isUp());
}

TEST_F(LinkFixture, PeerOfAndConnects) {
  EXPECT_EQ(link->peerOf(a), b);
  EXPECT_EQ(link->peerOf(b), a);
  EXPECT_TRUE(link->connects(a, b));
  EXPECT_TRUE(link->connects(b, a));
  EXPECT_FALSE(link->connects(a, a));
}

}  // namespace
}  // namespace rcsim
